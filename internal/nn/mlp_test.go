package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 4, 8, 3)
	if m.InputSize() != 4 || m.OutputSize() != 3 {
		t.Fatalf("sizes: in=%d out=%d", m.InputSize(), m.OutputSize())
	}
	out := m.Forward([]float64{1, 2, 3, 4})
	if len(out) != 3 {
		t.Fatalf("output length = %d, want 3", len(out))
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite output %v", out)
		}
	}
}

func TestForwardMatchesTape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 5, 16, 16, 2)
	x := []float64{0.1, -0.5, 0.9, 0.0, 0.3}
	a := m.Forward(x)
	b := m.ForwardTape(x).Output()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Forward and ForwardTape disagree at %d: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestPanicsOnWrongInputSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 4, 2)
	for name, fn := range map[string]func(){
		"Forward":     func() { m.Forward([]float64{1}) },
		"ForwardTape": func() { m.ForwardTape([]float64{1, 2, 3, 4, 5}) },
		"Backward":    func() { m.Backward(m.ForwardTape([]float64{1, 2, 3, 4}), []float64{1}) },
		"NewMLP":      func() { NewMLP(rng, 4) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

// TestGradientsMatchFiniteDifferences is the core correctness check of
// the backprop implementation: analytic gradients of a scalar loss must
// match central finite differences for every parameter.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 3, 7, 5, 2)
	x := []float64{0.3, -0.7, 0.2}
	target := []float64{0.5, -0.25}

	loss := func() float64 {
		out := m.Forward(x)
		l := 0.0
		for i := range out {
			d := out[i] - target[i]
			l += 0.5 * d * d
		}
		return l
	}

	// Analytic gradient: dL/dout = out - target.
	m.ZeroGrad()
	tape := m.ForwardTape(x)
	out := tape.Output()
	dOut := make([]float64, len(out))
	for i := range out {
		dOut[i] = out[i] - target[i]
	}
	m.Backward(tape, dOut)

	params := m.Params()
	grads := m.Grads()
	const h = 1e-6
	checked := 0
	for pi, p := range params {
		for j := range p {
			orig := p[j]
			p[j] = orig + h
			lPlus := loss()
			p[j] = orig - h
			lMinus := loss()
			p[j] = orig
			numeric := (lPlus - lMinus) / (2 * h)
			analytic := grads[pi][j]
			if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("param[%d][%d]: analytic %g vs numeric %g", pi, j, analytic, numeric)
			}
			checked++
		}
	}
	if checked != m.NumParams() {
		t.Fatalf("checked %d of %d params", checked, m.NumParams())
	}
}

func TestGradientsAccumulateUntilZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 2, 3, 1)
	x := []float64{1, -1}
	dOut := []float64{1}

	m.ZeroGrad()
	m.Backward(m.ForwardTape(x), dOut)
	g1 := append([]float64(nil), m.Grads()[0]...)
	m.Backward(m.ForwardTape(x), dOut)
	g2 := m.Grads()[0]
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-12 {
			t.Fatalf("gradient did not accumulate: %f vs 2*%f", g2[i], g1[i])
		}
	}
	m.ZeroGrad()
	for _, v := range m.Grads()[0] {
		if v != 0 {
			t.Fatal("ZeroGrad left non-zero gradients")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, 3, 4, 2)
	c := m.Clone()
	x := []float64{0.1, 0.2, 0.3}
	a, b := m.Forward(x), c.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clone output differs")
		}
	}
	// Mutating the clone must not affect the original.
	c.Params()[0][0] += 10
	a2 := m.Forward(x)
	for i := range a {
		if a[i] != a2[i] {
			t.Fatal("clone shares weights with original")
		}
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 3, 4, 2)
	o := NewMLP(rng, 3, 4, 2)
	if err := o.CopyWeightsFrom(m); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	a, b := m.Forward(x), o.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("weights not copied")
		}
	}
	bad := NewMLP(rng, 3, 5, 2)
	if err := bad.CopyWeightsFrom(m); err == nil {
		t.Error("CopyWeightsFrom accepted mismatched architecture")
	}
}

func TestClipGradients(t *testing.T) {
	g := [][]float64{{3, 0}, {0, 4}} // norm 5
	norm := ClipGradients(g, 0.5)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %f, want 5", norm)
	}
	sq := 0.0
	for _, gs := range g {
		for _, v := range gs {
			sq += v * v
		}
	}
	if math.Abs(math.Sqrt(sq)-0.5) > 1e-12 {
		t.Errorf("post-clip norm = %f, want 0.5", math.Sqrt(sq))
	}
	// Below threshold: unchanged.
	g2 := [][]float64{{0.1}}
	ClipGradients(g2, 0.5)
	if g2[0][0] != 0.1 {
		t.Error("clip modified gradients below threshold")
	}
}

func TestRMSPropReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP(rng, 2, 16, 1)
	opt := NewRMSProp(0.01)
	// Learn XOR-ish regression: y = x0*x1.
	samples := [][3]float64{{1, 1, 1}, {1, -1, -1}, {-1, 1, -1}, {-1, -1, 1}}
	lossAt := func() float64 {
		l := 0.0
		for _, s := range samples {
			out := m.Forward(s[:2])
			d := out[0] - s[2]
			l += 0.5 * d * d
		}
		return l
	}
	before := lossAt()
	for epoch := 0; epoch < 300; epoch++ {
		m.ZeroGrad()
		for _, s := range samples {
			tape := m.ForwardTape(s[:2])
			m.Backward(tape, []float64{tape.Output()[0] - s[2]})
		}
		opt.Step(m.Params(), m.Grads())
	}
	after := lossAt()
	if after > before/10 {
		t.Errorf("RMSprop failed to fit: loss %f -> %f", before, after)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, 6, 12, 4)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	a, b := m.Forward(x), loaded.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip output differs at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"bad sizes":    `{"sizes":[3],"weights":[]}`,
		"wrong blocks": `{"sizes":[2,2],"weights":[[1,2,3,4]]}`,
		"wrong shape":  `{"sizes":[2,2],"weights":[[1,2,3],[0,0]]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(bytes.NewBufferString(in)); err == nil {
				t.Error("Load accepted corrupt input")
			}
		})
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewMLP(rng, 3, 5, 2)
	want := 3*5 + 5 + 5*2 + 2
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

// Property: tanh hidden layers keep activations bounded, so outputs stay
// finite for any bounded input.
func TestForwardFiniteForBoundedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP(rng, 4, 32, 32, 3)
	f := func(a, b, c, d float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Max(-1, math.Min(1, v))
		}
		out := m.Forward([]float64{clamp(a), clamp(b), clamp(c), clamp(d)})
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP(rng, 2, 16, 1)
	opt := NewAdam(0.01)
	samples := [][3]float64{{1, 1, 1}, {1, -1, -1}, {-1, 1, -1}, {-1, -1, 1}}
	lossAt := func() float64 {
		l := 0.0
		for _, s := range samples {
			out := m.Forward(s[:2])
			d := out[0] - s[2]
			l += 0.5 * d * d
		}
		return l
	}
	before := lossAt()
	for epoch := 0; epoch < 300; epoch++ {
		m.ZeroGrad()
		for _, s := range samples {
			tape := m.ForwardTape(s[:2])
			m.Backward(tape, []float64{tape.Output()[0] - s[2]})
		}
		opt.Step(m.Params(), m.Grads())
	}
	after := lossAt()
	if after > before/10 {
		t.Errorf("Adam failed to fit: loss %f -> %f", before, after)
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// With a single parameter and gradient g, the first Adam step is
	// -lr * g/|g| (bias correction makes mHat=g, vHat=g^2) up to eps.
	opt := NewAdam(0.1)
	p := [][]float64{{1.0}}
	g := [][]float64{{0.5}}
	opt.Step(p, g)
	want := 1.0 - 0.1*(0.5/(math.Sqrt(0.25)+opt.Eps))
	if math.Abs(p[0][0]-want) > 1e-9 {
		t.Errorf("first Adam step = %f, want %f", p[0][0], want)
	}
}

func TestAdamReset(t *testing.T) {
	opt := NewAdam(0.1)
	p := [][]float64{{1.0}}
	g := [][]float64{{0.5}}
	opt.Step(p, g)
	opt.Reset()
	if opt.m != nil || opt.t != 0 {
		t.Error("Reset did not clear Adam state")
	}
}

func TestRMSPropReset(t *testing.T) {
	opt := NewRMSProp(0.1)
	p := [][]float64{{1.0}}
	g := [][]float64{{0.5}}
	opt.Step(p, g)
	opt.Reset()
	if opt.cache != nil {
		t.Error("Reset did not clear RMSprop cache")
	}
}
