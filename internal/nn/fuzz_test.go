package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// FuzzLoad drives the checkpoint decoder with malformed input. The seed
// corpus covers the failure classes the validator must catch (truncation,
// shape mismatches, non-finite and non-positive sizes); `go test` replays
// it as a regression suite, `go test -fuzz=FuzzLoad` explores further.
// The invariant: Load either errors or returns a network whose forward
// pass on a zero input is finite and correctly shaped.
func FuzzLoad(f *testing.F) {
	// A valid 2-3-2 checkpoint as the happy-path seed.
	var valid bytes.Buffer
	if err := NewMLP(rand.New(rand.NewSource(1)), 2, 3, 2).Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"sizes":[2],"weights":[]}`))
	f.Add([]byte(`{"sizes":[2,3],"weights":[[1,2,3,4,5,6]]}`))
	f.Add([]byte(`{"sizes":[2,3],"weights":[[1,2,3,4,5],[0,0,0]]}`))
	f.Add([]byte(`{"sizes":[0,0],"weights":[[],[]]}`))
	f.Add([]byte(`{"sizes":[-1,0],"weights":[[],[]]}`))
	f.Add([]byte(`{"sizes":[2,1],"weights":[[1,null],[0]]}`))
	f.Add([]byte(`{"sizes":[1,1],"weights":[[1e999],[0]]}`))
	f.Add([]byte(`{"sizes":[1,16777217],"weights":[[],[]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Huge size vectors make the decoder allocate before validation
		// can reject; bound the input like any sane checkpoint reader.
		if len(data) > 1<<16 {
			return
		}
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatalf("Load returned both a network and error %v", err)
			}
			return
		}
		if m.InputSize() <= 0 || m.OutputSize() <= 0 {
			t.Fatalf("Load accepted degenerate shape %v from %q", m.sizes, data)
		}
		out := m.Forward(make([]float64, m.InputSize()))
		if len(out) != m.OutputSize() {
			t.Fatalf("forward output %d, want %d", len(out), m.OutputSize())
		}
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("accepted checkpoint produces non-finite output %v (input %q)", v, data)
			}
		}
	})
}

// TestLoadRejectsDegenerateSizes pins the size validation the fuzz
// corpus exercises: each malformed document must produce a decode error,
// not a loadable network.
func TestLoadRejectsDegenerateSizes(t *testing.T) {
	for _, doc := range []string{
		`{"sizes":[0,0],"weights":[[],[]]}`,
		`{"sizes":[-1,0],"weights":[[],[]]}`,
		`{"sizes":[2,-2],"weights":[[],[]]}`,
		`{"sizes":[1,16777217],"weights":[[],[]]}`,
	} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("Load accepted %s", doc)
		}
	}
}
