// Package nn is a small, dependency-free neural network library: dense
// multi-layer perceptrons with tanh hidden activations, reverse-mode
// gradients, an RMSprop optimizer, and the categorical-distribution
// utilities needed for actor-critic reinforcement learning. It replaces
// the paper's TensorFlow/stable-baselines stack (DESIGN.md,
// substitution 2); the paper's networks are tanh MLPs with two hidden
// layers of 256 units (Sec. V-A2).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// dense is one linear layer: y = W·x + b, with W stored row-major.
type dense struct {
	in, out int
	w       []float64 // len out*in
	b       []float64 // len out
	gw      []float64
	gb      []float64
}

func newDense(rng *rand.Rand, in, out int) *dense {
	d := &dense{
		in:  in,
		out: out,
		w:   make([]float64, out*in),
		b:   make([]float64, out),
		gw:  make([]float64, out*in),
		gb:  make([]float64, out),
	}
	// Xavier/Glorot initialization, appropriate for tanh activations.
	scale := math.Sqrt(2.0 / float64(in+out))
	for i := range d.w {
		d.w[i] = rng.NormFloat64() * scale
	}
	return d
}

// forward computes y = W·x + b into out (len d.out).
func (d *dense) forward(x, out []float64) {
	for o := 0; o < d.out; o++ {
		s := d.b[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
}

// backward accumulates parameter gradients for upstream gradient dy at
// input x and writes the input gradient into dx (len d.in) unless nil.
func (d *dense) backward(x, dy, dx []float64) {
	for o := 0; o < d.out; o++ {
		g := dy[o]
		d.gb[o] += g
		row := d.gw[o*d.in : (o+1)*d.in]
		for i, xi := range x {
			row[i] += g * xi
		}
	}
	if dx == nil {
		return
	}
	for i := range dx {
		dx[i] = 0
	}
	for o := 0; o < d.out; o++ {
		g := dy[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for i := range dx {
			dx[i] += row[i] * g
		}
	}
}

// MLP is a dense feed-forward network with tanh hidden activations and a
// linear output layer.
type MLP struct {
	sizes  []int
	layers []*dense
}

// NewMLP builds an MLP with the given layer sizes, e.g.
// NewMLP(rng, 16, 256, 256, 4) for the paper's actor on a Δ_G=3 network.
// It panics if fewer than two sizes are given (a programming error).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs at least input and output sizes, got %v", sizes))
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, newDense(rng, sizes[i], sizes[i+1]))
	}
	return m
}

// InputSize returns the expected input dimension.
func (m *MLP) InputSize() int { return m.sizes[0] }

// OutputSize returns the output dimension.
func (m *MLP) OutputSize() int { return m.sizes[len(m.sizes)-1] }

// Forward runs inference, returning a freshly allocated output vector.
// Hot paths that decide per flow should allocate a Workspace once and
// call ForwardInto instead.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.InputSize()))
	}
	cur := x
	for li, l := range m.layers {
		next := make([]float64, l.out)
		l.forward(cur, next)
		if li+1 < len(m.layers) {
			for i := range next {
				next[i] = math.Tanh(next[i])
			}
		}
		cur = next
	}
	return cur
}

// Workspace holds the per-layer activation buffers of one forward pass,
// so steady-state inference performs no allocations. A workspace belongs
// to one caller (it is not safe for concurrent use) and fits any network
// with the same layer sizes as the one that created it.
type Workspace struct {
	sizes []int
	acts  [][]float64 // one buffer per layer output
}

// NewWorkspace allocates forward-pass scratch buffers sized for m.
func (m *MLP) NewWorkspace() *Workspace {
	ws := &Workspace{
		sizes: append([]int(nil), m.sizes...),
		acts:  make([][]float64, len(m.layers)),
	}
	for i, l := range m.layers {
		ws.acts[i] = make([]float64, l.out)
	}
	return ws
}

// ForwardInto runs inference using the workspace's buffers and returns
// the output slice, which aliases the workspace and stays valid until
// its next use. It performs zero allocations.
func (m *MLP) ForwardInto(ws *Workspace, x []float64) []float64 {
	if len(x) != m.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.InputSize()))
	}
	if len(ws.acts) != len(m.layers) {
		panic(fmt.Sprintf("nn: workspace has %d layers, network %d", len(ws.acts), len(m.layers)))
	}
	cur := x
	for li, l := range m.layers {
		next := ws.acts[li]
		if len(next) != l.out {
			panic(fmt.Sprintf("nn: workspace layer %d sized %d, want %d", li, len(next), l.out))
		}
		l.forward(cur, next)
		if li+1 < len(m.layers) {
			for i := range next {
				next[i] = math.Tanh(next[i])
			}
		}
		cur = next
	}
	return cur
}

// Tape records the activations of one forward pass for backpropagation.
type Tape struct {
	// acts[0] is the input; acts[i] the post-activation output of layer
	// i-1 (tanh applied on hidden layers, linear on the last).
	acts [][]float64
}

// Output returns the network output recorded on the tape.
func (t *Tape) Output() []float64 { return t.acts[len(t.acts)-1] }

// ForwardTape runs a forward pass and records activations for a later
// Backward call.
func (m *MLP) ForwardTape(x []float64) *Tape {
	if len(x) != m.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.InputSize()))
	}
	t := &Tape{acts: make([][]float64, 0, len(m.layers)+1)}
	t.acts = append(t.acts, append([]float64(nil), x...))
	cur := t.acts[0]
	for li, l := range m.layers {
		next := make([]float64, l.out)
		l.forward(cur, next)
		if li+1 < len(m.layers) {
			for i := range next {
				next[i] = math.Tanh(next[i])
			}
		}
		t.acts = append(t.acts, next)
		cur = next
	}
	return t
}

// Backward accumulates parameter gradients for the loss gradient dOut
// with respect to the tape's output. Gradients add up until ZeroGrad.
func (m *MLP) Backward(t *Tape, dOut []float64) {
	if len(dOut) != m.OutputSize() {
		panic(fmt.Sprintf("nn: gradient size %d, want %d", len(dOut), m.OutputSize()))
	}
	dy := append([]float64(nil), dOut...)
	for li := len(m.layers) - 1; li >= 0; li-- {
		l := m.layers[li]
		x := t.acts[li]
		var dx []float64
		if li > 0 {
			dx = make([]float64, l.in)
		}
		l.backward(x, dy, dx)
		if li > 0 {
			// Undo the tanh of the previous hidden layer:
			// d/dpre = d/dpost · (1 − post²).
			post := t.acts[li]
			for i := range dx {
				dx[i] *= 1 - post[i]*post[i]
			}
			dy = dx
		}
	}
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
}

// Params returns the parameter slices (weights and biases per layer).
// Mutating the returned slices mutates the network; the optimizer relies
// on this.
func (m *MLP) Params() [][]float64 {
	out := make([][]float64, 0, 2*len(m.layers))
	for _, l := range m.layers {
		out = append(out, l.w, l.b)
	}
	return out
}

// Grads returns the gradient slices aligned with Params.
func (m *MLP) Grads() [][]float64 {
	out := make([][]float64, 0, 2*len(m.layers))
	for _, l := range m.layers {
		out = append(out, l.gw, l.gb)
	}
	return out
}

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.w) + len(l.b)
	}
	return n
}

// Clone returns a deep copy (weights only; gradients zeroed).
func (m *MLP) Clone() *MLP {
	c := &MLP{sizes: append([]int(nil), m.sizes...)}
	for _, l := range m.layers {
		nl := &dense{
			in:  l.in,
			out: l.out,
			w:   append([]float64(nil), l.w...),
			b:   append([]float64(nil), l.b...),
			gw:  make([]float64, len(l.gw)),
			gb:  make([]float64, len(l.gb)),
		}
		c.layers = append(c.layers, nl)
	}
	return c
}

// CopyWeightsFrom overwrites m's weights with src's. The architectures
// must match.
func (m *MLP) CopyWeightsFrom(src *MLP) error {
	if len(m.layers) != len(src.layers) {
		return fmt.Errorf("nn: architecture mismatch: %v vs %v", m.sizes, src.sizes)
	}
	for i, l := range m.layers {
		s := src.layers[i]
		if l.in != s.in || l.out != s.out {
			return fmt.Errorf("nn: layer %d mismatch: %dx%d vs %dx%d", i, l.in, l.out, s.in, s.out)
		}
		copy(l.w, s.w)
		copy(l.b, s.b)
	}
	return nil
}

// ClipGradients scales all gradients down so their global L2 norm is at
// most maxNorm (the paper trains with max gradient 0.5). It returns the
// pre-clip norm.
func ClipGradients(grads [][]float64, maxNorm float64) float64 {
	sq := 0.0
	for _, g := range grads {
		for _, v := range g {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, g := range grads {
			for i := range g {
				g[i] *= scale
			}
		}
	}
	return norm
}
