package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxBasics(t *testing.T) {
	p := Softmax([]float64{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform logits: %v", p)
		}
	}
	p = Softmax([]float64{1000, 0}) // stability under large logits
	if math.IsNaN(p[0]) || p[0] < 0.999 {
		t.Fatalf("large logits: %v", p)
	}
}

// Property: softmax output is a valid distribution for any finite logits.
func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		sane := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 50)
		}
		p := Softmax([]float64{sane(a), sane(b), sane(c), sane(d)})
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogSoftmaxConsistentWithSoftmax(t *testing.T) {
	logits := []float64{0.5, -1.2, 3.3, 0}
	p := Softmax(logits)
	lp := LogSoftmax(logits)
	for i := range p {
		if math.Abs(math.Exp(lp[i])-p[i]) > 1e-12 {
			t.Fatalf("exp(logsoftmax) != softmax at %d: %g vs %g", i, math.Exp(lp[i]), p[i])
		}
	}
}

func TestSampleCategoricalSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	probs := []float64{0, 0.5, 0, 0.5}
	for i := 0; i < 1000; i++ {
		k := SampleCategorical(rng, probs)
		if k != 1 && k != 3 {
			t.Fatalf("sampled index %d with zero probability", k)
		}
	}
}

func TestSampleCategoricalFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	probs := []float64{0.1, 0.2, 0.7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(rng, probs)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("index %d frequency %f, want ~%f", i, got, p)
		}
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("Argmax = %d, want 1", got)
	}
	if got := Argmax([]float64{2, 2}); got != 0 {
		t.Errorf("Argmax tie = %d, want 0 (first)", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); got != 0 {
		t.Errorf("deterministic entropy = %f, want 0", got)
	}
	uniform := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if math.Abs(uniform-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %f, want ln(4)", uniform)
	}
	if skew := Entropy([]float64{0.9, 0.1}); skew >= math.Log(2) {
		t.Errorf("skewed entropy %f not below uniform", skew)
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := KL(p, p); got != 0 {
		t.Errorf("KL(p,p) = %f, want 0", got)
	}
	q := []float64{0.9, 0.1}
	if got := KL(p, q); got <= 0 {
		t.Errorf("KL(p,q) = %f, want > 0", got)
	}
	// Zero q probability is floored, not infinite.
	if got := KL([]float64{1, 0}, []float64{0, 1}); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("KL with zero support = %f, want finite", got)
	}
}

// Property: KL divergence is non-negative for random distributions.
func TestKLNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float64 {
			v := []float64{rng.Float64() + 1e-3, rng.Float64() + 1e-3, rng.Float64() + 1e-3}
			s := v[0] + v[1] + v[2]
			for i := range v {
				v[i] /= s
			}
			return v
		}
		return KL(mk(), mk()) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
