package nn

import (
	"math/rand"
	"testing"
)

// benchNet builds the paper's 2x256 actor shape on a Δ_G=6 observation
// (Interroute-sized: obs 4Δ+4 = 28, actions Δ+1 = 7).
func benchNet() (*MLP, []float64) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 28, 256, 256, 7)
	x := make([]float64, 28)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return m, x
}

// BenchmarkForward is the allocating forward pass (baseline for
// BenchmarkForwardInto).
func BenchmarkForward(b *testing.B) {
	m, x := benchNet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkForwardInto is the workspace-reusing forward pass of the
// inference hot path; it must report 0 allocs/op.
func BenchmarkForwardInto(b *testing.B) {
	m, x := benchNet()
	ws := m.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardInto(ws, x)
	}
}

// BenchmarkSoftmaxSample covers the post-forward part of a stochastic
// decision: softmax into a reused buffer plus one categorical draw.
func BenchmarkSoftmaxSample(b *testing.B) {
	m, x := benchNet()
	ws := m.NewWorkspace()
	logits := m.ForwardInto(ws, x)
	probs := make([]float64, len(logits))
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleCategorical(rng, SoftmaxInto(logits, probs))
	}
}
