package nn

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkpointBytes(t *testing.T, m *MLP) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChecksumStable(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(1)), 4, 8, 3)
	data := checkpointBytes(t, m)
	h1 := Checksum(data)
	h2, err := m.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("MLP.Checksum %s != Checksum(Save bytes) %s", h2, h1)
	}
	if len(h1) != 64 {
		t.Fatalf("checksum %q is not hex sha-256", h1)
	}
	other := NewMLP(rand.New(rand.NewSource(2)), 4, 8, 3)
	if oh := Checksum(checkpointBytes(t, other)); oh == h1 {
		t.Fatal("different weights produced identical checksums")
	}
}

func TestLoadVerified(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(7)), 5, 6, 2)
	data := checkpointBytes(t, m)
	hash := Checksum(data)

	got, err := LoadVerified(data, hash)
	if err != nil {
		t.Fatalf("matching hash rejected: %v", err)
	}
	if gotHash, _ := got.Checksum(); gotHash != hash {
		t.Fatalf("round-trip changed checksum: %s != %s", gotHash, hash)
	}

	// Mismatched hash must be rejected before deserialization: even a
	// fully valid checkpoint body fails when the advertised hash differs.
	if _, err := LoadVerified(data, Checksum([]byte("other"))); err == nil {
		t.Fatal("hash mismatch accepted")
	} else if !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("want hash-mismatch error, got %v", err)
	}

	// A corrupted (truncated) payload fails the hash check, never reaching
	// the JSON decoder.
	if _, err := LoadVerified(data[:len(data)-4], hash); err == nil {
		t.Fatal("truncated payload accepted")
	}

	// Empty wantHash degrades to plain Load.
	if _, err := LoadVerified(data, ""); err != nil {
		t.Fatalf("empty hash should skip verification: %v", err)
	}
}

func TestWriteFileVerified(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(3)), 3, 4, 2)
	data := checkpointBytes(t, m)
	hash := Checksum(data)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")

	if err := WriteFileVerified(path, data, hash); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("written checkpoint does not load: %v", err)
	}

	// A mismatching push must leave the existing file untouched.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFileVerified(path, []byte("garbage"), hash); err == nil {
		t.Fatal("hash mismatch accepted")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected push modified the checkpoint file")
	}

	// No stray temp files left behind by the rejected or accepted writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("unexpected files in checkpoint dir: %v", names)
	}
}
