package nn

import (
	"fmt"
	"math"
)

// batchLanes is the SIMD width of the batched forward pass: weights are
// streamed once per group of up to 16 observations, and the amd64 kernel
// processes all 16 lanes per weight load (4 × 4-wide AVX2 vectors). The
// generic fallback uses the same lane layout so both paths share the
// packing code and produce bit-identical results.
const batchLanes = 16

// BatchWorkspace holds the scratch buffers of a batched forward pass:
// the lane-transposed activation buffers for one 16-row group, a scalar
// workspace for singleton remainders, and the growing row-major output
// buffer. A workspace belongs to one caller (not safe for concurrent
// use) and fits any network with the same layer sizes as the one that
// created it.
type BatchWorkspace struct {
	sizes []int
	// xt is the lane-transposed input of the current group:
	// xt[i*16+l] = row l's input i.
	xt []float64
	// acts[k] is the lane-transposed output of layer k for the current
	// group, laid out like xt so layers chain without repacking.
	acts [][]float64
	// row is the scalar workspace used for groups of exactly one row,
	// which take the plain ForwardInto path.
	row *Workspace
	// out accumulates the row-major logits for all rows of the batch; it
	// grows to the largest batch seen and is then reused.
	out []float64
}

// NewBatchWorkspace allocates batched-inference scratch buffers sized
// for m. The output buffer grows on demand with the batch size, so the
// same workspace serves any batch size.
func (m *MLP) NewBatchWorkspace() *BatchWorkspace {
	ws := &BatchWorkspace{
		sizes: append([]int(nil), m.sizes...),
		xt:    make([]float64, m.InputSize()*batchLanes),
		acts:  make([][]float64, len(m.layers)),
		row:   m.NewWorkspace(),
	}
	for i, l := range m.layers {
		ws.acts[i] = make([]float64, l.out*batchLanes)
	}
	return ws
}

// ForwardBatchInto runs inference for n observations stored row-major in
// xs (len n*InputSize()) and returns the row-major logits (len
// n*OutputSize()), which alias the workspace and stay valid until its
// next use. Row b of the result is bit-identical to
// ForwardInto(ws, xs[b*in:(b+1)*in]): batching changes only when the
// arithmetic runs, never its operation order per row. n = 0 returns an
// empty slice; steady state performs zero allocations.
func (m *MLP) ForwardBatchInto(ws *BatchWorkspace, xs []float64, n int) []float64 {
	in := m.InputSize()
	outW := m.OutputSize()
	if n < 0 || len(xs) != n*in {
		panic(fmt.Sprintf("nn: batch input length %d, want %d rows x %d", len(xs), n, in))
	}
	if len(ws.sizes) != len(m.sizes) || len(ws.xt) != in*batchLanes {
		panic("nn: batch workspace does not fit this network")
	}
	for i, l := range m.layers {
		if len(ws.acts[i]) != l.out*batchLanes {
			panic(fmt.Sprintf("nn: batch workspace layer %d sized %d, want %d", i, len(ws.acts[i]), l.out*batchLanes))
		}
	}
	if cap(ws.out) < n*outW {
		ws.out = make([]float64, n*outW)
	}
	ws.out = ws.out[:n*outW]

	for g0 := 0; g0 < n; g0 += batchLanes {
		rows := n - g0
		if rows > batchLanes {
			rows = batchLanes
		}
		if rows == 1 {
			// A singleton group gains nothing from lane packing; route it
			// through the scalar path (identical semantics either way).
			y := m.ForwardInto(ws.row, xs[g0*in:(g0+1)*in])
			copy(ws.out[g0*outW:(g0+1)*outW], y)
			continue
		}
		// Pack the group lane-transposed, zero-filling unused lanes (the
		// kernel computes them; their results are discarded).
		for i := 0; i < in; i++ {
			col := ws.xt[i*batchLanes : i*batchLanes+batchLanes]
			for l := 0; l < rows; l++ {
				col[l] = xs[(g0+l)*in+i]
			}
			for l := rows; l < batchLanes; l++ {
				col[l] = 0
			}
		}
		cur := ws.xt
		for li, layer := range m.layers {
			next := ws.acts[li]
			layer.forwardLanes(cur, next)
			if li+1 < len(m.layers) {
				for j := range next {
					next[j] = math.Tanh(next[j])
				}
			}
			cur = next
		}
		for l := 0; l < rows; l++ {
			dst := ws.out[(g0+l)*outW : (g0+l+1)*outW]
			for o := range dst {
				dst[o] = cur[o*batchLanes+l]
			}
		}
	}
	return ws.out
}

// forwardLanes computes one dense layer over 16 lane-transposed rows:
// yt[o*16+l] = b[o] + Σ_i w[o][i]·xt[i*16+l], with the per-lane sum
// accumulated in ascending i and a separate multiply and add per step —
// the exact operation order of the scalar forward, so every lane is
// bit-identical to it.
func (d *dense) forwardLanes(xt, yt []float64) {
	for o := 0; o < d.out; o++ {
		acc := yt[o*batchLanes : o*batchLanes+batchLanes]
		bias := d.b[o]
		for l := range acc {
			acc[l] = bias
		}
	}
	if d.in == 0 {
		return
	}
	o := 0
	if useAVX512 {
		// Output pairs share each xt column load (two rows per pass).
		for ; o+2 <= d.out; o += 2 {
			lanes16MulAdd2(&d.w[o*d.in], &d.w[(o+1)*d.in], d.in, &xt[0],
				&yt[o*batchLanes], &yt[(o+1)*batchLanes])
		}
	}
	for ; o < d.out; o++ {
		row := d.w[o*d.in : (o+1)*d.in]
		acc := yt[o*batchLanes : (o+1)*batchLanes]
		if useAVX2 {
			lanes16MulAdd(&row[0], d.in, &xt[0], &acc[0])
		} else {
			lanes16MulAddGeneric(row, xt, acc)
		}
	}
}

// lanes16MulAddGeneric is the portable lane kernel: acc[l] += row[i] *
// xt[i*16+l] for every lane, ascending i, two roundings per step. Four
// accumulators per pass keep the FP units busy without spilling.
func lanes16MulAddGeneric(row, xt, acc []float64) {
	for k := 0; k < batchLanes; k += 4 {
		s0, s1, s2, s3 := acc[k], acc[k+1], acc[k+2], acc[k+3]
		j := k
		for _, wi := range row {
			s0 += wi * xt[j]
			s1 += wi * xt[j+1]
			s2 += wi * xt[j+2]
			s3 += wi * xt[j+3]
			j += batchLanes
		}
		acc[k], acc[k+1], acc[k+2], acc[k+3] = s0, s1, s2, s3
	}
}

// SoftmaxBatchInto applies SoftmaxInto to each of the n rows of width w
// in logits (row-major, len n*w), writing into out (same shape), and
// returns out. Each row matches a standalone SoftmaxInto bit-for-bit.
func SoftmaxBatchInto(logits []float64, n, w int, out []float64) []float64 {
	if len(logits) != n*w || len(out) != n*w {
		panic("nn: SoftmaxBatchInto shape mismatch")
	}
	for b := 0; b < n; b++ {
		SoftmaxInto(logits[b*w:(b+1)*w], out[b*w:(b+1)*w])
	}
	return out
}

// ArgmaxRows writes the per-row argmax (first index on ties, matching
// Argmax) of the n rows of width w in xs into out (len n) and returns
// out.
func ArgmaxRows(xs []float64, n, w int, out []int) []int {
	if len(xs) != n*w || len(out) != n {
		panic("nn: ArgmaxRows shape mismatch")
	}
	for b := 0; b < n; b++ {
		out[b] = Argmax(xs[b*w : (b+1)*w])
	}
	return out
}
