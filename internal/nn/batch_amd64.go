package nn

// lanes16MulAdd (batch_amd64.s) accumulates acc[l] += row[i]*xt[i*16+l]
// over i = 0..n-1 for 16 lanes with AVX2, bit-identical per lane to the
// scalar loop (separate multiply and add, ascending i).
func lanes16MulAdd(row *float64, n int, xt *float64, acc *float64)

// lanes16MulAdd2 (batch_amd64.s) is the AVX-512 two-row variant: both
// weight rows accumulate over the same 16 lanes, sharing the xt column
// loads. Bit-identical per (row, lane) to lanes16MulAdd.
func lanes16MulAdd2(row0, row1 *float64, n int, xt *float64, acc0, acc1 *float64)

// cpuHasAVX2 and cpuHasAVX512 (batch_amd64.s) detect the vector ISA with
// OS state support (XGETBV).
func cpuHasAVX2() bool
func cpuHasAVX512() bool

// useAVX2/useAVX512 route forwardLanes through the fastest available
// kernel; all kernels produce bit-identical results, so the switches are
// pure dispatch. Variables (not constants) so tests can force every path.
var (
	useAVX2   = cpuHasAVX2()
	useAVX512 = cpuHasAVX512()
)
