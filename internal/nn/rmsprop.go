package nn

import "math"

// RMSProp implements the RMSprop optimizer used to train the paper's
// actor and critic networks (Sec. V-A2): per-parameter learning rates
// from an exponential moving average of squared gradients.
type RMSProp struct {
	// LR is the learning rate α (the paper's initial rate is 0.25,
	// decayed by the trainer).
	LR float64
	// Decay is the moving-average coefficient ρ (default 0.99).
	Decay float64
	// Eps stabilizes the division (default 1e-5).
	Eps float64

	cache [][]float64
}

// NewRMSProp returns an optimizer with the given learning rate and
// standard RMSprop defaults.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.99, Eps: 1e-5}
}

// Step applies one descent update: p -= lr * g / sqrt(cache + eps).
// params and grads must come from the same network (aligned slices) and
// keep the same shapes across calls.
func (o *RMSProp) Step(params, grads [][]float64) {
	if o.cache == nil {
		o.cache = make([][]float64, len(params))
		for i, p := range params {
			o.cache[i] = make([]float64, len(p))
		}
	}
	for i, p := range params {
		g := grads[i]
		c := o.cache[i]
		for j := range p {
			c[j] = o.Decay*c[j] + (1-o.Decay)*g[j]*g[j]
			p[j] -= o.LR * g[j] / (math.Sqrt(c[j]) + o.Eps)
		}
	}
}

// Reset clears the moving-average state.
func (o *RMSProp) Reset() { o.cache = nil }
