//go:build !amd64

package nn

// useAVX2/useAVX512 are always false without the amd64 assembly kernels;
// the generic lane kernel produces bit-identical results, just slower.
const (
	useAVX2   = false
	useAVX512 = false
)

// The kernel stubs are never called when the switches are false; they
// keep the dispatch sites compiling on other architectures.
func lanes16MulAdd(row *float64, n int, xt *float64, acc *float64) {
	panic("nn: assembly kernel unavailable")
}

func lanes16MulAdd2(row0, row1 *float64, n int, xt *float64, acc0, acc1 *float64) {
	panic("nn: assembly kernel unavailable")
}
