// AVX2 16-lane mul-add kernel for the batched forward pass. Each lane l
// accumulates
//   acc[l] += row[i] * xt[i*16+l]   for i = 0..n-1, in ascending i order,
// with a separate multiply and add per step (two roundings — no FMA), so
// every lane reproduces the scalar accumulation loop bit-for-bit.

#include "textflag.h"

// func lanes16MulAdd(row *float64, n int, xt *float64, acc *float64)
TEXT ·lanes16MulAdd(SB), NOSPLIT, $0-32
	MOVQ row+0(FP), SI
	MOVQ n+8(FP), CX
	MOVQ xt+16(FP), DX
	MOVQ acc+24(FP), DI
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD 64(DI), Y2
	VMOVUPD 96(DI), Y3
	TESTQ CX, CX
	JZ   done
loop:
	VBROADCASTSD (SI), Y4
	VMULPD (DX), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(DX), Y4, Y6
	VADDPD Y6, Y1, Y1
	VMULPD 64(DX), Y4, Y7
	VADDPD Y7, Y2, Y2
	VMULPD 96(DX), Y4, Y8
	VADDPD Y8, Y3, Y3
	ADDQ $8, SI
	ADDQ $128, DX
	DECQ CX
	JNZ  loop
done:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET

// func cpuHasAVX2() bool
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL CX, DX
	ANDL $(1<<27 | 1<<28), DX
	CMPL DX, $(1<<27 | 1<<28)
	JNE  no
	// XCR0 bits 1 and 2: XMM and YMM state enabled by the OS.
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID leaf 7 subleaf 0: EBX bit 5 = AVX2.
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func lanes16MulAdd2(row0, row1 *float64, n int, xt *float64, acc0, acc1 *float64)
// AVX-512 variant: two weight rows share each xt column load, giving
// four independent 8-lane accumulator chains. Per (row, lane) the
// accumulation is still ascending i with separate mul/add roundings, so
// it is bit-identical to lanes16MulAdd and the scalar loop.
TEXT ·lanes16MulAdd2(SB), NOSPLIT, $0-48
	MOVQ row0+0(FP), SI
	MOVQ row1+8(FP), R8
	MOVQ n+16(FP), CX
	MOVQ xt+24(FP), DX
	MOVQ acc0+32(FP), DI
	MOVQ acc1+40(FP), R9
	VMOVUPD (DI), Z0
	VMOVUPD 64(DI), Z1
	VMOVUPD (R9), Z2
	VMOVUPD 64(R9), Z3
	TESTQ CX, CX
	JZ   done2
loop2:
	VBROADCASTSD (SI), Z6
	VBROADCASTSD (R8), Z7
	VMOVUPD (DX), Z8
	VMOVUPD 64(DX), Z9
	VMULPD Z8, Z6, Z10
	VADDPD Z10, Z0, Z0
	VMULPD Z9, Z6, Z11
	VADDPD Z11, Z1, Z1
	VMULPD Z8, Z7, Z12
	VADDPD Z12, Z2, Z2
	VMULPD Z9, Z7, Z13
	VADDPD Z13, Z3, Z3
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $128, DX
	DECQ CX
	JNZ  loop2
done2:
	VMOVUPD Z0, (DI)
	VMOVUPD Z1, 64(DI)
	VMOVUPD Z2, (R9)
	VMOVUPD Z3, 64(R9)
	VZEROUPPER
	RET

// func cpuHasAVX512() bool
TEXT ·cpuHasAVX512(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	// Need OSXSAVE (ECX bit 27).
	ANDL $(1<<27), CX
	JZ   no512
	// XCR0: XMM+YMM (bits 1-2) plus opmask/ZMM-hi256/hi16-ZMM (bits 5-7).
	MOVL $0, CX
	XGETBV
	ANDL $0xE6, AX
	CMPL AX, $0xE6
	JNE  no512
	// CPUID leaf 7 subleaf 0: EBX bit 16 = AVX512F (with bit 5 = AVX2).
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5 | 1<<16), BX
	CMPL BX, $(1<<5 | 1<<16)
	JNE  no512
	MOVB $1, ret+0(FP)
	RET
no512:
	MOVB $0, ret+0(FP)
	RET
