package flowtrace_test

import (
	"math"
	"testing"

	"distcoord/internal/flowtrace"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
	"distcoord/internal/traffic"
)

// lineGraph returns 0-1-2-...-n-1 with unit link delays and uniform
// capacities (mirrors the simnet test helper, which is unexported).
func lineGraph(n int, nodeCap, linkCap float64) *graph.Graph {
	g := graph.New("line")
	for i := 0; i < n; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), nodeCap)
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddLink(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			panic(err)
		}
		g.SetLinkCapacity(i, linkCap)
	}
	return g
}

// twoCompService is a 2-component chain with a startup delay so span
// trees contain nonzero wait segments.
func twoCompService(procDelay, startupDelay float64) *simnet.Service {
	return &simnet.Service{
		Name: "svc",
		Chain: []*simnet.Component{
			{Name: "c1", ProcDelay: procDelay, StartupDelay: startupDelay, IdleTimeout: 1000, ResourcePerRate: 1},
			{Name: "c2", ProcDelay: procDelay, StartupDelay: startupDelay, IdleTimeout: 1000, ResourcePerRate: 1},
		},
	}
}

// spCoord processes locally when the node has capacity, otherwise
// forwards along the shortest path to the egress.
type spCoord struct{}

func (spCoord) Name() string { return "test-sp" }

func (spCoord) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	if !f.Processed() {
		if st.FreeNode(v) >= f.Current().Resource(f.Rate) {
			return 0
		}
	}
	hop := st.APSP().NextHop(v, f.Egress)
	for i, ad := range st.Graph().Neighbors(v) {
		if ad.Neighbor == hop {
			return i + 1
		}
	}
	return 0
}

// record returns a tracer appending into events plus access to the slice.
func record(events *[]simnet.TraceEvent) simnet.FlowTracer {
	return simnet.TracerFunc(func(e simnet.TraceEvent) { *events = append(*events, e) })
}

func run(t *testing.T, cfg simnet.Config) *simnet.Metrics {
	t.Helper()
	s, err := simnet.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

// TestAssembleExactSegments pins the span tree of one fully predictable
// flow: arrive node 0 at t=10, start up c1 (wait 2), process (5), start
// up c2 (wait 2), process (5), two unit-delay hops to the egress.
func TestAssembleExactSegments(t *testing.T) {
	var events []simnet.TraceEvent
	cfg := simnet.Config{
		Graph:       lineGraph(3, 10, 10),
		Service:     twoCompService(5, 2),
		Ingresses:   []simnet.Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      2,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     11,
		Coordinator: spCoord{},
		Tracer:      record(&events),
	}
	m := run(t, cfg)
	if m.Succeeded != 1 {
		t.Fatalf("succeeded = %d, want 1", m.Succeeded)
	}

	spans, err := flowtrace.Assemble(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	f := spans[0]
	if !f.Completed || f.Ingress != 0 || f.Final != 2 {
		t.Errorf("span shape wrong: %+v", f)
	}
	if f.Start != 10 || f.End != 26 {
		t.Errorf("lifetime [%g, %g], want [10, 26]", f.Start, f.End)
	}
	d := f.Decompose()
	if d.Wait != 4 || d.Process != 10 || d.Transit != 2 {
		t.Errorf("decomposition %+v, want wait=4 process=10 transit=2", d)
	}
	if got := d.Total(); got != f.Delay() {
		t.Errorf("phase sum %g != delay %g", got, f.Delay())
	}
	if len(f.Visits) != 2 || f.Visits[0].Node != 0 || f.Visits[1].Node != 1 {
		t.Fatalf("visits wrong: %+v", f.Visits)
	}
	if f.Visits[0].Out == nil || f.Visits[0].Out.Duration() != 1 ||
		f.Visits[1].Out == nil || f.Visits[1].Out.Duration() != 1 {
		t.Errorf("transit segments wrong: %+v %+v", f.Visits[0].Out, f.Visits[1].Out)
	}
	if f.Decisions != 4 {
		t.Errorf("decisions = %d, want 4 (process c1, process c2, forward, forward)", f.Decisions)
	}
	cp := f.CriticalPath()
	if len(cp) == 0 || cp[0].Phase != flowtrace.PhaseProcess || cp[0].Duration() != 5 {
		t.Errorf("critical path head = %+v, want a 5-unit process segment", cp)
	}
}

// faultRunConfig is a busy run with instance-kill and link faults: the
// acceptance scenario for span reassembly under drops.
func faultRunConfig(tracer simnet.FlowTracer) simnet.Config {
	return simnet.Config{
		Graph:       lineGraph(3, 10, 10),
		Service:     twoCompService(5, 2),
		Ingresses:   []simnet.Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 4}}},
		Egress:      2,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     61,
		Coordinator: spCoord{},
		Tracer:      tracer,
		Faults: []simnet.Fault{
			{Time: 13, Kind: simnet.FaultInstanceKill, Node: 0},
			{Time: 29, Kind: simnet.FaultLinkDown, Link: 1},
			{Time: 33, Kind: simnet.FaultLinkUp, Link: 1},
		},
	}
}

// TestSpanTreesOverFaultRun is the acceptance property: on a fault-heavy
// run, every arrived flow reassembles into exactly one span tree —
// including the instance-kill drops — and each tree's phase durations
// sum to its end-to-end delay within float tolerance.
func TestSpanTreesOverFaultRun(t *testing.T) {
	var events []simnet.TraceEvent
	m := run(t, faultRunConfig(record(&events)))

	if m.DropsBy[simnet.DropInstanceKill] == 0 {
		t.Fatal("scenario produced no instance-kill drops; fault timing is off")
	}
	if m.Succeeded == 0 || m.Dropped == 0 {
		t.Fatalf("want a mix of outcomes, got succeeded=%d dropped=%d", m.Succeeded, m.Dropped)
	}

	spans, err := flowtrace.Assemble(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != m.Arrived {
		t.Fatalf("%d span trees for %d arrived flows", len(spans), m.Arrived)
	}
	seen := make(map[int]bool)
	completed, dropped := 0, 0
	byCause := make(map[simnet.DropCause]int)
	for i, f := range spans {
		if seen[f.FlowID] {
			t.Fatalf("flow %d has more than one span tree", f.FlowID)
		}
		seen[f.FlowID] = true
		if i > 0 && spans[i-1].FlowID >= f.FlowID {
			t.Fatalf("spans not sorted by flow ID: %d after %d", f.FlowID, spans[i-1].FlowID)
		}
		if f.Completed {
			completed++
		} else {
			dropped++
			byCause[f.Drop]++
		}
		delay := f.Delay()
		if diff := math.Abs(f.Decompose().Total() - delay); diff > 1e-9*math.Max(1, delay) {
			t.Errorf("flow %d: phase sum %g != delay %g (diff %g)", f.FlowID, f.Decompose().Total(), delay, diff)
		}
	}
	if completed != m.Succeeded || dropped != m.Dropped {
		t.Errorf("span outcomes %d/%d, metrics say %d/%d", completed, dropped, m.Succeeded, m.Dropped)
	}
	for cause, n := range m.DropsBy {
		if byCause[cause] != n {
			t.Errorf("cause %v: %d spans, metrics say %d", cause, byCause[cause], n)
		}
	}

	rep := flowtrace.Analyze(spans, 3)
	if rep.Flows != len(spans) || rep.Completed != completed || rep.Dropped != dropped {
		t.Errorf("report totals %d/%d/%d, want %d/%d/%d",
			rep.Flows, rep.Completed, rep.Dropped, len(spans), completed, dropped)
	}
	// Per-node attribution must tile the same time the decompositions do.
	var nodeTime float64
	for _, ns := range rep.Nodes {
		nodeTime += ns.Busy()
	}
	want := rep.Delay.Total() + rep.DroppedTime.Total()
	if diff := math.Abs(nodeTime - want); diff > 1e-9*math.Max(1, want) {
		t.Errorf("node-attributed time %g != decomposed time %g", nodeTime, want)
	}
	foundKill := false
	for _, cs := range rep.Causes {
		if cs.Cause == simnet.DropInstanceKill {
			foundKill = true
			if cs.Count != m.DropsBy[simnet.DropInstanceKill] {
				t.Errorf("instance-kill count %d, want %d", cs.Count, m.DropsBy[simnet.DropInstanceKill])
			}
		}
	}
	if !foundKill {
		t.Error("instance-kill missing from cause table")
	}
	if len(rep.Slowest) != 3 && len(rep.Slowest) != completed {
		t.Errorf("slowest list has %d entries", len(rep.Slowest))
	}
	for i := 1; i < len(rep.Slowest); i++ {
		if rep.Slowest[i].Delay() > rep.Slowest[i-1].Delay() {
			t.Errorf("slowest list not sorted: %g after %g", rep.Slowest[i].Delay(), rep.Slowest[i-1].Delay())
		}
	}
}

// TestCollectorMatchesOffline runs the same fault scenario through the
// live Collector and checks its registry feed agrees with the offline
// reassembly.
func TestCollectorMatchesOffline(t *testing.T) {
	reg := telemetry.NewRegistry()
	col := flowtrace.NewCollector(reg)
	var events []simnet.TraceEvent
	m := run(t, faultRunConfig(flowtrace.Tee(col, record(&events))))

	if col.Pending() != 0 {
		t.Errorf("%d flows still pending after the run", col.Pending())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["flow.traced.completed"]; got != int64(m.Succeeded) {
		t.Errorf("flow.traced.completed = %d, want %d", got, m.Succeeded)
	}
	if got := snap.Counters["flow.traced.dropped"]; got != int64(m.Dropped) {
		t.Errorf("flow.traced.dropped = %d, want %d", got, m.Dropped)
	}
	if got := snap.Counters["flow.drop.instance-kill"]; got != int64(m.DropsBy[simnet.DropInstanceKill]) {
		t.Errorf("flow.drop.instance-kill = %d, want %d", got, m.DropsBy[simnet.DropInstanceKill])
	}
	if got := snap.Counters["flow.traced.malformed"]; got != 0 {
		t.Errorf("flow.traced.malformed = %d, want 0", got)
	}

	spans, err := flowtrace.Assemble(events)
	if err != nil {
		t.Fatal(err)
	}
	var wantWait, wantTotal float64
	totalObs := 0
	for _, f := range spans {
		wantWait += f.Decompose().Wait
		if f.Completed {
			wantTotal += f.Delay()
			totalObs++
		}
	}
	hw, ok := snap.Histograms["flow.phase.wait"]
	if !ok || hw.Count != uint64(len(spans)) {
		t.Fatalf("flow.phase.wait histogram count wrong: %+v", hw)
	}
	if diff := math.Abs(hw.Sum - wantWait); diff > 1e-9*math.Max(1, wantWait) {
		t.Errorf("flow.phase.wait sum %g, want %g", hw.Sum, wantWait)
	}
	ht, ok := snap.Histograms["flow.phase.total"]
	if !ok || ht.Count != uint64(totalObs) {
		t.Fatalf("flow.phase.total histogram count wrong: %+v", ht)
	}
	if diff := math.Abs(ht.Sum - wantTotal); diff > 1e-9*math.Max(1, wantTotal) {
		t.Errorf("flow.phase.total sum %g, want %g", ht.Sum, wantTotal)
	}
}

// TestAssembleLooseTruncated salvages well-formed flows and reports the
// truncated one.
func TestAssembleLooseTruncated(t *testing.T) {
	events := []simnet.TraceEvent{
		{Time: 0, Kind: simnet.TraceArrival, FlowID: 1, Node: 0, Action: -1, Link: -1},
		{Time: 0, Kind: simnet.TraceDecision, FlowID: 1, Node: 0, Action: 0, Link: -1},
		{Time: 0, Kind: simnet.TraceProcess, FlowID: 1, Node: 0, Action: -1, Link: -1},
		{Time: 5, Kind: simnet.TraceComplete, FlowID: 1, Node: 0, Action: -1, Link: -1},
		{Time: 2, Kind: simnet.TraceArrival, FlowID: 2, Node: 0, Action: -1, Link: -1}, // no terminal
	}
	spans, errs := flowtrace.AssembleLoose(events)
	if len(spans) != 1 || spans[0].FlowID != 1 {
		t.Fatalf("salvaged %d spans, want flow 1 only", len(spans))
	}
	if len(errs) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(errs), errs)
	}
	if _, err := flowtrace.Assemble(events); err == nil {
		t.Error("Assemble accepted a truncated trace")
	}
}
