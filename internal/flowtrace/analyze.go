package flowtrace

import (
	"sort"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

// NodeStat attributes flow time and decisions to one node. In the
// distributed coordination model every node runs its own agent, so this
// doubles as the per-agent attribution table: Decisions counts the
// agent's invocations, Processes/Forwards/Keeps split what it chose,
// and the phase columns show where flows spent time under its control
// (Transit is attributed to the forwarding node, which picked the link).
type NodeStat struct {
	Node      graph.NodeID `json:"node"`
	Decisions int          `json:"decisions"`
	Processes int          `json:"processes"`
	Forwards  int          `json:"forwards"`
	Keeps     int          `json:"keeps"`
	Wait      float64      `json:"wait"`
	Process   float64      `json:"process"`
	Transit   float64      `json:"transit"`
	Drops     int          `json:"drops"`
}

// Busy returns the total flow time attributed to the node.
func (n NodeStat) Busy() float64 { return n.Wait + n.Process + n.Transit }

// AgentStat is NodeStat rolled up to the agent serving the nodes: with
// N agents, node v is served by agent v mod N (the pool's routing rule),
// so the table shows how decision load and flow time distribute across
// the fleet rather than the topology.
type AgentStat struct {
	Agent     int     `json:"agent"`
	Nodes     []int   `json:"nodes"`
	Decisions int     `json:"decisions"`
	Processes int     `json:"processes"`
	Forwards  int     `json:"forwards"`
	Keeps     int     `json:"keeps"`
	Wait      float64 `json:"wait"`
	Process   float64 `json:"process"`
	Transit   float64 `json:"transit"`
	Drops     int     `json:"drops"`
}

// Busy returns the total flow time attributed to the agent's nodes.
func (a AgentStat) Busy() float64 { return a.Wait + a.Process + a.Transit }

// GroupByAgent rolls node attribution up to numAgents agent slots
// (node mod numAgents, the pool routing rule). Sorted by Busy()
// descending like the node table; every slot appears even when idle, so
// a dead agent's zero row is visible.
func GroupByAgent(nodes []NodeStat, numAgents int) []AgentStat {
	if numAgents <= 0 {
		return nil
	}
	agents := make([]AgentStat, numAgents)
	for i := range agents {
		agents[i].Agent = i
	}
	for _, st := range nodes {
		a := &agents[int(st.Node)%numAgents]
		a.Nodes = append(a.Nodes, int(st.Node))
		a.Decisions += st.Decisions
		a.Processes += st.Processes
		a.Forwards += st.Forwards
		a.Keeps += st.Keeps
		a.Wait += st.Wait
		a.Process += st.Process
		a.Transit += st.Transit
		a.Drops += st.Drops
	}
	for i := range agents {
		sort.Ints(agents[i].Nodes)
	}
	sort.Slice(agents, func(i, j int) bool {
		if agents[i].Busy() != agents[j].Busy() {
			return agents[i].Busy() > agents[j].Busy()
		}
		return agents[i].Agent < agents[j].Agent
	})
	return agents
}

// RPCStat aggregates the wall-time decomposition of every remote
// decision round trip in the spans (decision segments with a nonzero
// RPC block). Sub-span columns are totals in microseconds; by the
// exact-tiling invariant Send+Net+Queue+Infer+Return == Total.
type RPCStat struct {
	Decisions int     `json:"decisions"`
	TotalUS   float64 `json:"total_us"`
	MeanUS    float64 `json:"mean_us"`
	SendUS    float64 `json:"send_us"`
	NetUS     float64 `json:"net_us"`
	QueueUS   float64 `json:"queue_us"`
	InferUS   float64 `json:"infer_us"`
	ReturnUS  float64 `json:"return_us"`
}

// CauseStat aggregates the dropped flows sharing one drop cause.
type CauseStat struct {
	Cause     simnet.DropCause `json:"-"`
	CauseName string           `json:"cause"`
	Count     int              `json:"count"`
	MeanLife  float64          `json:"mean_lifetime"` // mean time alive before the drop
	MeanComp  float64          `json:"mean_chain_pos"`
}

// Report is the aggregate analysis of a set of flow span trees.
type Report struct {
	Flows     int `json:"flows"`
	Completed int `json:"completed"`
	Dropped   int `json:"dropped"`

	// Delay decomposes the summed end-to-end delay of completed flows;
	// DroppedTime does the same for the lifetime of dropped flows.
	Delay       Decomposition `json:"delay"`
	DroppedTime Decomposition `json:"dropped_time"`
	MeanDelay   float64       `json:"mean_delay"` // completed flows

	Nodes   []NodeStat  `json:"nodes"`         // sorted by Busy() descending
	Causes  []CauseStat `json:"causes"`        // sorted by Count descending
	RPC     *RPCStat    `json:"rpc,omitempty"` // remote round trips; nil for in-process runs
	Slowest []*FlowSpan `json:"-"`             // top-N completed flows by delay
}

// Analyze builds the report over assembled spans. topN bounds the
// Slowest list (0 disables it).
func Analyze(spans []*FlowSpan, topN int) *Report {
	r := &Report{Flows: len(spans)}
	nodes := make(map[graph.NodeID]*NodeStat)
	node := func(id graph.NodeID) *NodeStat {
		st, ok := nodes[id]
		if !ok {
			st = &NodeStat{Node: id}
			nodes[id] = st
		}
		return st
	}
	causes := make(map[simnet.DropCause]*CauseStat)

	for _, f := range spans {
		var into *Decomposition
		if f.Completed {
			r.Completed++
			into = &r.Delay
			r.MeanDelay += f.Delay()
		} else {
			r.Dropped++
			into = &r.DroppedTime
			node(f.Final).Drops++
			cs, ok := causes[f.Drop]
			if !ok {
				cs = &CauseStat{Cause: f.Drop, CauseName: f.Drop.String()}
				causes[f.Drop] = cs
			}
			cs.Count++
			cs.MeanLife += f.Delay()
			cs.MeanComp += float64(f.DropComp)
		}
		for i := range f.Visits {
			v := &f.Visits[i]
			st := node(v.Node)
			for _, s := range v.Segments {
				into.add(s)
				switch s.Phase {
				case PhaseDecision:
					st.Decisions++
					if s.RPC.TotalNS != 0 {
						if r.RPC == nil {
							r.RPC = &RPCStat{}
						}
						r.RPC.Decisions++
						r.RPC.TotalUS += float64(s.RPC.TotalNS) / 1e3
						r.RPC.SendUS += float64(s.RPC.SendNS) / 1e3
						r.RPC.NetUS += float64(s.RPC.NetNS) / 1e3
						r.RPC.QueueUS += float64(s.RPC.QueueNS) / 1e3
						r.RPC.InferUS += float64(s.RPC.InferNS) / 1e3
						r.RPC.ReturnUS += float64(s.RPC.ReturnNS) / 1e3
					}
				case PhaseWait:
					st.Wait += s.Duration()
				case PhaseProcess:
					st.Processes++
					st.Process += s.Duration()
				}
			}
			if v.Out != nil {
				into.add(*v.Out)
				st.Forwards++
				st.Transit += v.Out.Duration()
			}
		}
	}
	if r.Completed > 0 {
		r.MeanDelay /= float64(r.Completed)
	}
	if r.RPC != nil {
		r.RPC.MeanUS = r.RPC.TotalUS / float64(r.RPC.Decisions)
	}

	for _, st := range nodes {
		// A decision resolves to process, forward, or keep; keeps have no
		// dedicated segment (their hold is a wait), so derive them.
		if k := st.Decisions - st.Forwards - st.Processes; k > 0 {
			st.Keeps = k
		}
		r.Nodes = append(r.Nodes, *st)
	}
	sort.Slice(r.Nodes, func(i, j int) bool {
		if r.Nodes[i].Busy() != r.Nodes[j].Busy() {
			return r.Nodes[i].Busy() > r.Nodes[j].Busy()
		}
		return r.Nodes[i].Node < r.Nodes[j].Node
	})

	for _, cs := range causes {
		if cs.Count > 0 {
			cs.MeanLife /= float64(cs.Count)
			cs.MeanComp /= float64(cs.Count)
		}
		r.Causes = append(r.Causes, *cs)
	}
	sort.Slice(r.Causes, func(i, j int) bool {
		if r.Causes[i].Count != r.Causes[j].Count {
			return r.Causes[i].Count > r.Causes[j].Count
		}
		return r.Causes[i].Cause < r.Causes[j].Cause
	})

	r.Slowest = SlowestFlows(spans, topN)
	return r
}

// SlowestFlows returns the topN completed flows by end-to-end delay
// (ties: lower flow ID first). The input slice is not modified.
func SlowestFlows(spans []*FlowSpan, topN int) []*FlowSpan {
	if topN <= 0 {
		return nil
	}
	done := make([]*FlowSpan, 0, len(spans))
	for _, f := range spans {
		if f.Completed {
			done = append(done, f)
		}
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].Delay() != done[j].Delay() {
			return done[i].Delay() > done[j].Delay()
		}
		return done[i].FlowID < done[j].FlowID
	})
	if len(done) > topN {
		done = done[:topN]
	}
	return done
}
