package flowtrace

import (
	"sync"

	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// Collector is a live simnet.FlowTracer that reassembles each flow's
// span tree as soon as its terminal event arrives and folds the delay
// decomposition into a telemetry.Registry, so the observability
// endpoint can expose phase histograms while a simulation is still
// running (no JSONL file or post-hoc cmd/flowtrace pass needed):
//
//	flow.phase.wait / flow.phase.process / flow.phase.transit
//	    per-flow phase totals (histograms)
//	flow.phase.total
//	    end-to-end delay of completed flows (histogram)
//	flow.traced.completed / flow.traced.dropped / flow.traced.malformed
//	    flow outcome counters
//	flow.drop.<cause>
//	    drop counters by cause
//	flow.rpc.{total,send,net,queue,infer,return}_us
//	    decision round-trip sub-span histograms (remote runs only:
//	    decision segments carrying a DecideTiming block)
//
// Only terminated flows are folded in; per-flow event buffers are
// released on termination, so memory is bounded by the number of flows
// in flight. Safe for concurrent use (several sims may share one
// registry through separate or shared collectors).
type Collector struct {
	reg *telemetry.Registry

	mu      sync.Mutex
	pending map[int][]simnet.TraceEvent
}

// NewCollector builds a collector feeding reg.
func NewCollector(reg *telemetry.Registry) *Collector {
	return &Collector{reg: reg, pending: make(map[int][]simnet.TraceEvent)}
}

// Trace implements simnet.FlowTracer.
func (c *Collector) Trace(e simnet.TraceEvent) {
	c.mu.Lock()
	c.pending[e.FlowID] = append(c.pending[e.FlowID], e)
	if e.Kind != simnet.TraceComplete && e.Kind != simnet.TraceDrop {
		c.mu.Unlock()
		return
	}
	evs := c.pending[e.FlowID]
	delete(c.pending, e.FlowID)
	c.mu.Unlock()

	span, err := assembleFlow(e.FlowID, evs)
	if err != nil {
		c.reg.Counter("flow.traced.malformed").Inc()
		return
	}
	d := span.Decompose()
	c.reg.Histogram("flow.phase.wait").Observe(d.Wait)
	c.reg.Histogram("flow.phase.process").Observe(d.Process)
	c.reg.Histogram("flow.phase.transit").Observe(d.Transit)
	for i := range span.Visits {
		for _, s := range span.Visits[i].Segments {
			if s.Phase != PhaseDecision || s.RPC.TotalNS == 0 {
				continue
			}
			c.reg.Histogram("flow.rpc.total_us").Observe(float64(s.RPC.TotalNS) / 1e3)
			c.reg.Histogram("flow.rpc.send_us").Observe(float64(s.RPC.SendNS) / 1e3)
			c.reg.Histogram("flow.rpc.net_us").Observe(float64(s.RPC.NetNS) / 1e3)
			c.reg.Histogram("flow.rpc.queue_us").Observe(float64(s.RPC.QueueNS) / 1e3)
			c.reg.Histogram("flow.rpc.infer_us").Observe(float64(s.RPC.InferNS) / 1e3)
			c.reg.Histogram("flow.rpc.return_us").Observe(float64(s.RPC.ReturnNS) / 1e3)
		}
	}
	if span.Completed {
		c.reg.Counter("flow.traced.completed").Inc()
		c.reg.Histogram("flow.phase.total").Observe(span.Delay())
	} else {
		c.reg.Counter("flow.traced.dropped").Inc()
		c.reg.Counter("flow.drop." + span.Drop.String()).Inc()
	}
}

// Pending reports how many flows have buffered events but no terminal
// event yet (in-flight flows; nonzero after a sim ends only if the
// trace was truncated).
func (c *Collector) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Tee fans one trace stream out to several tracers (e.g. the JSONL sink
// and a live Collector). Nil tracers are skipped; with none left Tee
// returns nil, which the simulator treats as tracing disabled.
func Tee(tracers ...simnet.FlowTracer) simnet.FlowTracer {
	var kept []simnet.FlowTracer
	for _, t := range tracers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return simnet.TracerFunc(func(e simnet.TraceEvent) {
		for _, t := range kept {
			t.Trace(e)
		}
	})
}
