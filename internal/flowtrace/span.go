// Package flowtrace reassembles the per-flow TraceEvent stream of a
// simulation (the -flow-trace JSONL output) into per-flow span trees
// and analyzes them: an end-to-end delay decomposition (processing vs.
// transit vs. waiting), per-node/per-agent decision and drop-cause
// attribution tables, and a critical-path report of the slowest flows.
// It is the analysis layer the paper's evaluation reasons with (why a
// flow made or missed its deadline), turned into a library (cmd/flowtrace
// is the CLI) and a live Collector feeding flow.phase.* histograms into
// the observability endpoint while a run is still going.
package flowtrace

import (
	"fmt"
	"sort"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

// Phase classifies one span-tree segment of a flow's lifetime.
type Phase int

// Phases of a flow's end-to-end delay. Decision segments are
// zero-duration markers (the simulator queries coordinators
// instantaneously); the other three partition the flow's lifetime.
const (
	PhaseDecision Phase = iota // a coordinator query (zero duration)
	PhaseWait                  // waiting: instance startup/readiness, keep holds
	PhaseProcess               // a component processing the flow
	PhaseTransit               // the flow's head propagating over a link
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseDecision:
		return "decision"
	case PhaseWait:
		return "wait"
	case PhaseProcess:
		return "process"
	case PhaseTransit:
		return "transit"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Segment is one leaf of the span tree: a contiguous interval of the
// flow's lifetime attributed to a single phase at a single place.
type Segment struct {
	Phase  Phase
	Node   graph.NodeID // where (for transit: the departing node)
	Link   int          // traversed link for PhaseTransit; -1 otherwise
	Comp   int          // chain component index the flow was requesting
	Action int          // the coordinator's choice (decision segments); -1 otherwise
	Start  float64
	End    float64
	// RPC, on decision segments of remote runs, is the wall-time
	// decomposition of the decision round trip (zero TotalNS otherwise).
	// Decision segments are zero-duration in simulation time; RPC is the
	// wall-clock cost hiding behind that instant.
	RPC simnet.DecideTiming
}

// Duration returns the segment's extent.
func (s Segment) Duration() float64 { return s.End - s.Start }

// Visit is one stay of the flow's head at a node: the middle level of
// the span tree. Out, when non-nil, is the transit segment that carried
// the flow away from the node (nil for the final visit and for flows
// dropped while resident).
type Visit struct {
	Node     graph.NodeID
	Enter    float64
	Leave    float64
	Segments []Segment
	Out      *Segment
}

// FlowSpan is the root of one flow's span tree: ingress → node visits
// (with their decision/wait/process segments and outbound transit) →
// egress or drop.
type FlowSpan struct {
	FlowID    int
	Ingress   graph.NodeID
	Final     graph.NodeID // egress on completion, the drop location otherwise
	Start     float64
	End       float64
	Completed bool
	Drop      simnet.DropCause // cause when !Completed
	DropComp  int              // chain position when the flow dropped
	Decisions int
	Visits    []Visit
}

// Delay returns the flow's end-to-end delay (lifetime for drops).
func (f *FlowSpan) Delay() float64 { return f.End - f.Start }

// Decomposition splits an end-to-end delay into its three duration
// phases. For a well-formed span tree Total() equals FlowSpan.Delay up
// to float summation error.
type Decomposition struct {
	Wait    float64 `json:"wait"`
	Process float64 `json:"process"`
	Transit float64 `json:"transit"`
}

// Total returns the decomposed sum.
func (d Decomposition) Total() float64 { return d.Wait + d.Process + d.Transit }

// add accumulates one segment.
func (d *Decomposition) add(s Segment) {
	switch s.Phase {
	case PhaseWait:
		d.Wait += s.Duration()
	case PhaseProcess:
		d.Process += s.Duration()
	case PhaseTransit:
		d.Transit += s.Duration()
	}
}

// Decompose sums the flow's segments by phase.
func (f *FlowSpan) Decompose() Decomposition {
	var d Decomposition
	for i := range f.Visits {
		for _, s := range f.Visits[i].Segments {
			d.add(s)
		}
		if out := f.Visits[i].Out; out != nil {
			d.add(*out)
		}
	}
	return d
}

// CriticalPath returns the flow's segments ordered by descending
// duration (ties: chronological). A flow is strictly sequential, so
// every segment is on the critical path; the ordering surfaces which
// contributed most to the end-to-end delay. Zero-duration decision
// markers are omitted.
func (f *FlowSpan) CriticalPath() []Segment {
	var segs []Segment
	for i := range f.Visits {
		for _, s := range f.Visits[i].Segments {
			if s.Phase != PhaseDecision && s.Duration() > 0 {
				segs = append(segs, s)
			}
		}
		if out := f.Visits[i].Out; out != nil {
			segs = append(segs, *out)
		}
	}
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Duration() > segs[j].Duration() })
	return segs
}

// VerifyRPCTiling checks the exact-tiling invariant of every decision
// round trip in the spans: each decision segment carrying an RPC
// decomposition must have non-negative sub-spans summing exactly (in
// integer nanoseconds — no float slack) to its total. Returns how many
// round trips were checked and the first violation found. A remote run
// whose trace fails this has a broken clock derivation, not a slow
// network.
func VerifyRPCTiling(spans []*FlowSpan) (int, error) {
	checked := 0
	for _, f := range spans {
		for i := range f.Visits {
			for _, s := range f.Visits[i].Segments {
				if s.Phase != PhaseDecision || s.RPC.TotalNS == 0 {
					continue
				}
				checked++
				t := s.RPC
				if t.SendNS < 0 || t.NetNS < 0 || t.QueueNS < 0 || t.InferNS < 0 || t.ReturnNS < 0 {
					return checked, fmt.Errorf("flow %d decision at t=%g (node %d): negative sub-span in %+v", f.FlowID, s.Start, s.Node, t)
				}
				if t.Sum() != t.TotalNS {
					return checked, fmt.Errorf("flow %d decision at t=%g (node %d): sub-spans sum to %dns, total %dns", f.FlowID, s.Start, s.Node, t.Sum(), t.TotalNS)
				}
			}
		}
	}
	return checked, nil
}

// Assemble reassembles trace events into exactly one span tree per
// flow, sorted by flow ID. Any malformed flow (missing arrival or
// terminal event — e.g. a truncated trace) is an error; use
// AssembleLoose to salvage the parseable flows instead.
func Assemble(events []simnet.TraceEvent) ([]*FlowSpan, error) {
	spans, errs := AssembleLoose(events)
	if len(errs) > 0 {
		return spans, fmt.Errorf("flowtrace: %d of %d flows malformed: %w", len(errs), len(errs)+len(spans), errs[0])
	}
	return spans, nil
}

// AssembleLoose is Assemble returning per-flow errors instead of
// failing the batch.
func AssembleLoose(events []simnet.TraceEvent) ([]*FlowSpan, []error) {
	byFlow := make(map[int][]simnet.TraceEvent)
	for _, e := range events {
		byFlow[e.FlowID] = append(byFlow[e.FlowID], e)
	}
	ids := make([]int, 0, len(byFlow))
	for id := range byFlow {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var spans []*FlowSpan
	var errs []error
	for _, id := range ids {
		span, err := assembleFlow(id, byFlow[id])
		if err != nil {
			errs = append(errs, err)
			continue
		}
		spans = append(spans, span)
	}
	return spans, errs
}

// assembleFlow walks one flow's events in time order and attributes
// every inter-event interval to a phase segment. The attribution rules
// mirror the simulator's event semantics:
//
//   - process(t, wait w) … next(t'): wait [t, t+w], process [t+w, t']
//     (t' is the processing-done decision, or an earlier drop when the
//     instance or node was killed mid-processing)
//   - forward(t) … next(t'): transit [t, t'] (t' is the decision at the
//     neighbor, or an earlier drop when the link failed mid-flight)
//   - keep(t) … next(t'): wait [t, t'] (the keep hold)
//   - arrival/decision: instantaneous; defensively, any gap to the next
//     event is attributed to wait so segment durations always sum to
//     the end-to-end delay
func assembleFlow(id int, evs []simnet.TraceEvent) (*FlowSpan, error) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	if evs[0].Kind != simnet.TraceArrival {
		return nil, fmt.Errorf("flow %d: first event is %v, want arrival (truncated trace?)", id, evs[0].Kind)
	}
	last := evs[len(evs)-1]
	if last.Kind != simnet.TraceComplete && last.Kind != simnet.TraceDrop {
		return nil, fmt.Errorf("flow %d: last event is %v, want complete or drop (truncated trace?)", id, last.Kind)
	}

	f := &FlowSpan{FlowID: id, Ingress: evs[0].Node, Start: evs[0].Time}
	cur := -1 // index of the open visit
	open := func(v graph.NodeID, t float64) {
		f.Visits = append(f.Visits, Visit{Node: v, Enter: t, Leave: t})
		cur = len(f.Visits) - 1
	}
	seg := func(s Segment) {
		if cur < 0 {
			return
		}
		f.Visits[cur].Segments = append(f.Visits[cur].Segments, s)
		if s.End > f.Visits[cur].Leave {
			f.Visits[cur].Leave = s.End
		}
	}

	for i, e := range evs {
		terminal := e.Kind == simnet.TraceComplete || e.Kind == simnet.TraceDrop
		if terminal && i != len(evs)-1 {
			return nil, fmt.Errorf("flow %d: events after terminal %v at t=%g", id, e.Kind, e.Time)
		}
		next := e.Time
		if i+1 < len(evs) {
			next = evs[i+1].Time
		}

		switch e.Kind {
		case simnet.TraceArrival:
			if i != 0 {
				return nil, fmt.Errorf("flow %d: duplicate arrival at t=%g", id, e.Time)
			}
			open(e.Node, e.Time)
			if next > e.Time {
				seg(Segment{Phase: PhaseWait, Node: e.Node, Link: -1, Comp: e.CompIdx, Action: -1, Start: e.Time, End: next})
			}

		case simnet.TraceDecision:
			f.Decisions++
			seg(Segment{Phase: PhaseDecision, Node: e.Node, Link: -1, Comp: e.CompIdx, Action: e.Action, Start: e.Time, End: e.Time, RPC: e.RPC})
			if next > e.Time {
				seg(Segment{Phase: PhaseWait, Node: e.Node, Link: -1, Comp: e.CompIdx, Action: -1, Start: e.Time, End: next})
			}

		case simnet.TraceProcess:
			wEnd := e.Time + e.Wait
			if wEnd > next {
				wEnd = next
			}
			if wEnd > e.Time {
				seg(Segment{Phase: PhaseWait, Node: e.Node, Link: -1, Comp: e.CompIdx, Action: -1, Start: e.Time, End: wEnd})
			}
			if next > wEnd {
				seg(Segment{Phase: PhaseProcess, Node: e.Node, Link: -1, Comp: e.CompIdx, Action: -1, Start: wEnd, End: next})
			}

		case simnet.TraceKeep:
			seg(Segment{Phase: PhaseWait, Node: e.Node, Link: -1, Comp: e.CompIdx, Action: -1, Start: e.Time, End: next})

		case simnet.TraceForward:
			if cur < 0 {
				return nil, fmt.Errorf("flow %d: forward before arrival", id)
			}
			f.Visits[cur].Leave = e.Time
			f.Visits[cur].Out = &Segment{Phase: PhaseTransit, Node: e.Node, Link: e.Link, Comp: e.CompIdx, Action: -1, Start: e.Time, End: next}
			cur = -1
			if i+1 < len(evs) && evs[i+1].Kind != simnet.TraceDrop && evs[i+1].Kind != simnet.TraceComplete {
				open(evs[i+1].Node, next)
			}

		case simnet.TraceComplete:
			f.Completed = true
			f.Final = e.Node
			f.End = e.Time
			if cur >= 0 {
				f.Visits[cur].Leave = e.Time
			}

		case simnet.TraceDrop:
			f.Completed = false
			f.Drop = e.Drop
			f.DropComp = e.CompIdx
			f.Final = e.Node
			f.End = e.Time
			if cur >= 0 {
				f.Visits[cur].Leave = e.Time
			}

		default:
			return nil, fmt.Errorf("flow %d: unknown trace kind %v", id, e.Kind)
		}
	}
	return f, nil
}
