// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. V). Each experiment trains the distributed DRL agent
// as needed, runs all comparison algorithms over multiple seeds, and
// prints the resulting series as text tables.
//
// Usage:
//
//	experiments -exp table1                  # Table I
//	experiments -exp fig6b                   # Fig. 6b (Poisson arrival)
//	experiments -exp all                     # everything
//	experiments -exp point -ingresses 4      # one scenario, all algorithms
//	experiments -exp fig6b -paper            # paper-scale settings (slow)
//	experiments -exp fig7 -episode-log t.jsonl -cpuprofile cpu.pprof
//	experiments -exp point -faults node-outage  # resilience point run
//	experiments -exp fig6b -jobs 4           # bound the worker pool
//	experiments -exp fig6b -grid-log grid.jsonl  # per-cell progress log
//
// Default budgets are sized for commodity CPUs; -paper selects the
// paper's hyperparameters (10 training seeds, 4 parallel envs, 2x256
// networks, horizon 20000, 30 evaluation seeds).
//
// Each experiment is decomposed into a grid of training jobs and
// (point, algorithm, seed) evaluation cells executed on a bounded
// worker pool (-jobs, default all CPUs). Figure output is byte-identical
// for any -jobs value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"distcoord/internal/chaos"
	"distcoord/internal/clicfg"
	"distcoord/internal/eval"
	"distcoord/internal/rl"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1, fig6a-d, fig7, fig8a, fig8b, fig9a, fig9b, point, all")
		seeds     = flag.Int("seeds", 3, "evaluation seeds per data point (paper: 30)")
		horizon   = flag.Float64("horizon", 2000, "evaluation horizon T (paper: 20000)")
		episodes  = flag.Int("train-episodes", 300, "training update iterations per seed (600+ for paper-like quality)")
		trSeeds   = flag.Int("train-seeds", 2, "independently trained agents k (paper: 10)")
		trEnvs    = flag.Int("train-envs", 4, "parallel training environments l (paper: 4)")
		trHorizon = flag.Float64("train-horizon", 1000, "training episode horizon")
		hidden    = flag.String("hidden", "32,32", "hidden layer sizes (paper: 256,256)")
		paper     = flag.Bool("paper", false, "use the paper's full-scale settings (slow)")
		ingresses = flag.Int("ingresses", 2, "ingress count for -exp point")
		verbose   = flag.Bool("v", true, "print progress")
	)
	shared := clicfg.Register(flag.CommandLine)
	flag.Parse()

	opts := eval.Options{
		EvalSeeds: *seeds,
		Horizon:   *horizon,
		Budget: eval.TrainBudget{
			Episodes:     *episodes,
			ParallelEnvs: *trEnvs,
			Seeds:        *trSeeds,
			Horizon:      *trHorizon,
		},
	}
	var err error
	opts.Budget.Hidden, err = parseHidden(*hidden)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *paper {
		opts.EvalSeeds = 30
		opts.Horizon = 20000
		opts.Budget = eval.PaperTrainBudget()
	}
	if *verbose {
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	} else {
		opts.Logf = func(string, ...interface{}) {}
	}

	if err := runShared(shared, *exp, opts, *ingresses); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runShared resolves the shared flag surface (profiling, episode log,
// grid log, worker pool bound, fault injection) around the experiment
// run. The episode log collects the training telemetry of every DRL
// training run the experiment performs; -metrics-out dumps the grid
// progress gauges (grid.cells.*, grid.eta_seconds) at exit; the fault
// spec applies to the -exp point scenario only — figure sweeps always
// run fault-free so they stay comparable with the paper.
func runShared(shared *clicfg.Flags, exp string, opts eval.Options, ingresses int) error {
	rt, err := shared.Apply()
	if err != nil {
		return err
	}
	defer rt.Close()
	rt.SetObsInfo("experiment", exp)
	opts.Budget.OnEpisode = func(rec rl.EpisodeRecord) { rt.OnEpisode(rec) }
	opts.Jobs = rt.Jobs()
	if rt.GridLogEnabled() {
		opts.OnCell = func(rec eval.GridRecord) { rt.EmitGridCell(rec) }
	}
	// The runtime's registry backs the live observability endpoint, so
	// the engine's grid.cells.* progress gauges are scrapeable mid-run.
	reg := rt.Registry()
	opts.Registry = reg
	if err := run(exp, opts, ingresses, rt.FaultSpec()); err != nil {
		return err
	}
	if path := rt.MetricsOut(); path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return rt.Close()
}

func parseHidden(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -hidden value %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(exp string, opts eval.Options, ingresses int, faults chaos.Spec) error {
	printFigure := func(f eval.Figure, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(f)
		return nil
	}
	switch exp {
	case "table1":
		fmt.Println(eval.TableI(opts))
	case "fig6a", "fig6b", "fig6c", "fig6d":
		return printFigure(eval.Fig6(strings.TrimPrefix(exp, "fig6"), opts))
	case "fig7":
		return printFigure(eval.Fig7(opts))
	case "fig8a":
		return printFigure(eval.Fig8a(opts))
	case "fig8b":
		return printFigure(eval.Fig8b(opts))
	case "fig9a":
		return printFigure(eval.Fig9a(opts))
	case "fig9b":
		rows, err := eval.Fig9b(opts)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatTiming(rows))
	case "point":
		return runPoint(opts, ingresses, faults)
	case "all":
		fmt.Println(eval.TableI(opts))
		for _, v := range []string{"a", "b", "c", "d"} {
			if err := printFigure(eval.Fig6(v, opts)); err != nil {
				return err
			}
		}
		if err := printFigure(eval.Fig7(opts)); err != nil {
			return err
		}
		if err := printFigure(eval.Fig8a(opts)); err != nil {
			return err
		}
		if err := printFigure(eval.Fig8b(opts)); err != nil {
			return err
		}
		if err := printFigure(eval.Fig9a(opts)); err != nil {
			return err
		}
		rows, err := eval.Fig9b(opts)
		if err != nil {
			return err
		}
		fmt.Println(eval.FormatTiming(rows))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// runPoint evaluates a single scenario point with every algorithm — a
// quick way to inspect one configuration without a full figure sweep.
// Under -faults the evaluation runs are perturbed by the chaos schedule
// while training stays fault-free.
func runPoint(opts eval.Options, ingresses int, faults chaos.Spec) error {
	s := eval.Base()
	s.NumIngresses = ingresses
	s.Horizon = opts.Horizon

	opts.Logf("point: %d ingresses: training DistDRL...", ingresses)
	policy, err := eval.TrainDRL(s, opts.Budget)
	if err != nil {
		return err
	}
	opts.Logf("point: training seed scores: %v", policy.Stats.SeedScores)
	s.Faults = faults
	if faults.Enabled() {
		opts.Logf("point: evaluating under faults: %s", faults.String())
	}
	fig, err := eval.PointFigure(s, policy, opts)
	if err != nil {
		return err
	}
	fmt.Println(fig)
	return nil
}
