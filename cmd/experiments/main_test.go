package main

import (
	"testing"

	"distcoord/internal/eval"
)

func TestParseHidden(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"64,64", []int{64, 64}, true},
		{"256, 256", []int{256, 256}, true},
		{"32", []int{32}, true},
		{"", nil, false},
		{"a,b", nil, false},
		{"0", nil, false},
		{"-5", nil, false},
	}
	for _, c := range cases {
		got, err := parseHidden(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseHidden(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseHidden(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseHidden(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("figZZ", optsForTest(), 2); err == nil {
		t.Error("run accepted unknown experiment")
	}
}

func TestRunTable1(t *testing.T) {
	if err := run("table1", optsForTest(), 2); err != nil {
		t.Errorf("table1: %v", err)
	}
}

func optsForTest() eval.Options {
	o := eval.DefaultOptions()
	o.Logf = func(string, ...interface{}) {}
	return o
}
