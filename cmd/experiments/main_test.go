package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distcoord/internal/chaos"
	"distcoord/internal/clicfg"
	"distcoord/internal/eval"
	"distcoord/internal/telemetry"
)

// TestRunShared exercises the shared flag surface: CPU/heap profiles
// are written and the episode log file is created even for an
// experiment that performs no training.
func TestRunShared(t *testing.T) {
	dir := t.TempDir()
	shared := &clicfg.Flags{
		EpisodeLog: filepath.Join(dir, "episodes.jsonl"),
		GridLog:    filepath.Join(dir, "grid.jsonl"),
		MetricsOut: filepath.Join(dir, "metrics.json"),
		Jobs:       2,
		Prof: telemetry.Profiler{
			CPUProfile: filepath.Join(dir, "cpu.pprof"),
			MemProfile: filepath.Join(dir, "mem.pprof"),
		},
	}
	if err := runShared(shared, "table1", optsForTest(), 2); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{shared.Prof.CPUProfile, shared.Prof.MemProfile, shared.EpisodeLog, shared.GridLog, shared.MetricsOut} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing output %s: %v", p, err)
		}
	}
	// table1's four topology rows run through the engine, so the grid
	// log must contain records.
	data, err := os.ReadFile(shared.GridLog)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("grid log is empty; table1 rows should be recorded")
	}
	// The metrics summary must carry the engine's progress gauges.
	metrics, err := os.ReadFile(shared.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"grid.cells.total", "grid.cells.done"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics summary missing gauge %q:\n%s", want, metrics)
		}
	}
}

// TestRunSharedRejectsNegativeJobs pins -jobs validation.
func TestRunSharedRejectsNegativeJobs(t *testing.T) {
	shared := &clicfg.Flags{Jobs: -1}
	if err := runShared(shared, "table1", optsForTest(), 2); err == nil {
		t.Error("runShared accepted negative -jobs")
	}
}

// TestRunSharedRejectsBadFaultSpec pins fail-fast validation of the
// -faults flag: a bogus profile must error before any experiment runs.
func TestRunSharedRejectsBadFaultSpec(t *testing.T) {
	shared := &clicfg.Flags{Faults: "meteor-strike"}
	if err := runShared(shared, "table1", optsForTest(), 2); err == nil {
		t.Error("runShared accepted unknown fault profile")
	}
}

func TestParseHidden(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"64,64", []int{64, 64}, true},
		{"256, 256", []int{256, 256}, true},
		{"32", []int{32}, true},
		{"", nil, false},
		{"a,b", nil, false},
		{"0", nil, false},
		{"-5", nil, false},
	}
	for _, c := range cases {
		got, err := parseHidden(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseHidden(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseHidden(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseHidden(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("figZZ", optsForTest(), 2, chaos.Spec{}); err == nil {
		t.Error("run accepted unknown experiment")
	}
}

func TestRunTable1(t *testing.T) {
	if err := run("table1", optsForTest(), 2, chaos.Spec{}); err != nil {
		t.Errorf("table1: %v", err)
	}
}

func optsForTest() eval.Options {
	o := eval.DefaultOptions()
	o.Logf = func(string, ...interface{}) {}
	return o
}
