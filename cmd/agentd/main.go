// Command agentd is a per-node agent daemon: it loads a policy
// checkpoint and serves coordination decisions over the agentnet binary
// TCP protocol. A driver (coordsim -agents, bench -rpc, or any
// coord.Remote client) connects, assigns the daemon a set of nodes in
// the handshake, and streams observation rows; the daemon answers with
// sampled actions from per-node actor clones — exactly the computation
// the in-process Distributed coordinator performs, moved behind a
// socket.
//
// Usage:
//
//	agentd -listen 127.0.0.1:7501 -model policy.bin
//	agentd -listen :0 -model policy.bin          # free port, printed on stdout
//	agentd -listen :7501 -model policy.bin -persist deployed.bin
//
// The daemon prints "agentd listening on ADDR" on stdout once the
// socket is bound (drivers that spawn agentd processes parse this line
// to learn the port), then serves until SIGINT/SIGTERM. With -persist,
// checkpoints deployed by a model push are also written to that path
// (verified, atomic temp+rename), so a restarted daemon comes back with
// the model the control plane last pushed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distcoord/internal/agentnet"
	"distcoord/internal/clicfg"
	"distcoord/internal/coord"
)

func main() {
	model := flag.String("model", "", "policy checkpoint to serve (required; see coordsim -save-model)")
	persist := flag.String("persist", "", "persist pushed checkpoints to this path (verified atomic write)")
	id := flag.String("id", "", "agent identity reported in handshakes (default: agentd-<pid>)")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "drop connections idle longer than this")
	quiet := flag.Bool("quiet", false, "suppress per-connection log lines")
	shared := clicfg.Register(flag.CommandLine)
	flag.Parse()

	if err := run(*model, *persist, *id, *idle, *quiet, shared); err != nil {
		fmt.Fprintln(os.Stderr, "agentd:", err)
		os.Exit(1)
	}
}

func run(model, persist, id string, idle time.Duration, quiet bool, shared *clicfg.Flags) error {
	// Apply (not just Validate) so -obs-addr gives the daemon its own
	// live observability endpoint: /metrics exposes the agentd.* decision
	// telemetry below, /timeseries its sampled history.
	rt, err := shared.Apply()
	if err != nil {
		return err
	}
	defer rt.Close()
	if shared.Listen == "" {
		return fmt.Errorf("-listen is required (the daemon serves decisions on it)")
	}
	if model == "" {
		return fmt.Errorf("-model is required (generate one with coordsim -algo drl -save-model)")
	}
	checkpoint, err := os.ReadFile(model)
	if err != nil {
		return err
	}
	if id == "" {
		id = fmt.Sprintf("agentd-%d", os.Getpid())
	}
	logf := log.New(os.Stderr, id+": ", log.LstdFlags).Printf
	if quiet {
		logf = nil
	}
	host, err := coord.NewAgentHost(id, checkpoint, persist, logf)
	if err != nil {
		return err
	}
	reg := rt.Registry()
	rt.SetObsInfo("id", id)
	rt.SetObsInfo("model_hash", host.ModelHash())
	host.OnDeploy = func(hash string) {
		reg.Counter("agentd.deploys").Inc()
		rt.SetObsInfo("model_hash", hash)
	}
	srv := agentnet.NewServer(host.NewBackend, agentnet.ServerConfig{
		IdleTimeout: idle,
		Logf:        logf,
		// Server-side decision telemetry: request and row counters plus
		// the sub-span histograms a driver's client-side timing cannot
		// see (encode time lands in the driver's network share).
		ObserveDecide: func(batch int, serverNS, inferNS, encodeNS int64) {
			reg.Counter("agentd.requests").Inc()
			reg.Counter("agentd.decisions").Add(int64(batch))
			reg.Histogram("agentd.server_us").Observe(float64(serverNS) / 1e3)
			reg.Histogram("agentd.infer_us").Observe(float64(inferNS) / 1e3)
			reg.Histogram("agentd.encode_us").Observe(float64(encodeNS) / 1e3)
		},
	})
	addr, err := srv.Listen(shared.Listen)
	if err != nil {
		return err
	}
	// Drivers spawning local agentd processes parse this exact line to
	// learn where a ":0" listener landed.
	fmt.Printf("agentd listening on %s\n", addr)
	os.Stdout.Sync()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "agentd: %s, shutting down\n", s)
	return srv.Close()
}
