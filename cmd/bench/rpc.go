package main

import (
	"bytes"
	"fmt"
	"time"

	"distcoord/internal/agentnet"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/graph"
	"distcoord/internal/nn"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// rpcResult is one decision-RTT measurement (-rpc, BENCH_rpc.json): the
// same fig6b-style workload decided in-process versus across loopback
// TCP sockets to goroutine-hosted agentd servers. EqualMetrics reports
// whether both runs produced identical metrics fingerprints — the
// equivalence oracle as a benchmark artifact (bench_check.sh rejects a
// false value, and gates P50us finite and positive).
type rpcResult struct {
	Record       string  `json:"record"` // always "rpc"
	Mode         string  `json:"mode"`   // "inproc" | "socket"
	Topology     string  `json:"topology"`
	Agents       int     `json:"agents,omitempty"` // socket mode only
	Decisions    int     `json:"decisions"`
	Samples      int     `json:"samples"`
	P50us        float64 `json:"rtt_p50_us"`
	P95us        float64 `json:"rtt_p95_us"`
	P99us        float64 `json:"rtt_p99_us"`
	EqualMetrics bool    `json:"equal_metrics"`
}

// timedCoordinator times each sequential decision of the wrapped
// coordinator. It deliberately exposes no optional capability — both rpc
// modes run the sequential path, so the two RTT distributions compare
// the same per-decision work with and without a socket in the middle.
type timedCoordinator struct {
	inner   simnet.Coordinator
	observe func(us float64)
}

func (t *timedCoordinator) Name() string { return t.inner.Name() }

func (t *timedCoordinator) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	start := time.Now()
	a := t.inner.Decide(st, f, v, now)
	t.observe(float64(time.Since(start).Nanoseconds()) / 1e3)
	return a
}

// runRPC measures the decision round trip in-process versus across the
// agentnet socket boundary on an identically seeded fig6b-style run.
// The agents are real agentnet servers on loopback TCP, hosted in this
// process so the benchmark needs no external binaries.
func runRPC(sink *telemetry.Sink, topology string) error {
	const (
		seed      = 0
		numAgents = 3
	)
	s := eval.Base()
	s.Topology = topology
	s.Horizon = 4000

	inst, err := s.Instantiate(seed)
	if err != nil {
		return err
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{256, 256}, // the paper's deployed network shape
		Seed:       42,
	})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := agent.Actor.Save(&buf); err != nil {
		return err
	}
	checkpoint := buf.Bytes()

	reg := telemetry.NewRegistry()

	// In-process baseline: the exact computation the agents will host,
	// timed around each Decide call.
	actor, err := nn.Load(bytes.NewReader(checkpoint))
	if err != nil {
		return err
	}
	d, err := coord.NewDistributed(adapter, actor)
	if err != nil {
		return err
	}
	d.Reseed(seed)
	inprocRTT := reg.Histogram("inproc")
	mIn, err := inst.RunWith(&timedCoordinator{inner: d, observe: inprocRTT.Observe}, eval.RunOptions{})
	if err != nil {
		return err
	}

	// Socket mode: goroutine-hosted agentd servers on loopback TCP.
	endpoints := make([]string, numAgents)
	servers := make([]*agentnet.Server, numAgents)
	for i := range endpoints {
		host, err := coord.NewAgentHost(fmt.Sprintf("bench-agent-%d", i), checkpoint, "", nil)
		if err != nil {
			return err
		}
		servers[i] = agentnet.NewServer(host.NewBackend, agentnet.ServerConfig{})
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer servers[i].Close()
		endpoints[i] = addr.String()
	}
	socketRTT := reg.Histogram("socket")
	r, err := coord.NewRemote(adapter, endpoints, seed, coord.RemoteOptions{
		Stochastic: true,
		ObserveRTT: socketRTT.Observe,
	})
	if err != nil {
		return err
	}
	defer r.Close()
	inst2, err := s.Instantiate(seed)
	if err != nil {
		return err
	}
	mSock, err := inst2.RunWith(r, eval.RunOptions{})
	if err != nil {
		return err
	}

	equal := fingerprint(mIn) == fingerprint(mSock)
	emit := func(mode string, h *telemetry.Histogram, m *simnet.Metrics, agents int) error {
		rec := rpcResult{
			Record:       "rpc",
			Mode:         mode,
			Topology:     inst.Graph.Name(),
			Agents:       agents,
			Decisions:    m.Decisions,
			Samples:      int(h.Count()),
			P50us:        h.Quantile(0.5),
			P95us:        h.Quantile(0.95),
			P99us:        h.Quantile(0.99),
			EqualMetrics: equal,
		}
		if err := sink.Emit(rec); err != nil {
			return err
		}
		fmt.Printf("%-8s %-10s %6d decisions  p50 %8.1f µs  p95 %8.1f µs  p99 %8.1f µs  equal_metrics=%v\n",
			mode, rec.Topology, rec.Decisions, rec.P50us, rec.P95us, rec.P99us, equal)
		return nil
	}
	if err := emit("inproc", inprocRTT, mIn, 0); err != nil {
		return err
	}
	if err := emit("socket", socketRTT, mSock, numAgents); err != nil {
		return err
	}
	if !equal {
		return fmt.Errorf("rpc equivalence oracle violated: socket metrics diverged from in-process metrics")
	}
	return nil
}
