// Command bench measures the per-decision inference hot path and emits
// machine-readable results as JSONL (one record per benchmark) through
// the telemetry sink. It covers the three levels of the hot path:
//
//   - forward: one actor forward pass (allocating vs. workspace-reusing)
//   - decide: a full distributed decision (observe + forward + act),
//     in both stochastic and argmax mode
//   - episode: one full simulated episode under the DRL coordinator
//
// With -scale it instead runs the scale harness: full episodes on
// synthetic topologies of 100/500/1000 nodes under burst traffic, with
// sequential versus batched decision resolution, reporting flows per
// second (use -out BENCH_scale.json). The harness then sweeps the
// sharded event loop (shards 1/2/4 at 1000 nodes, or -shards to pin the
// multi-shard point); every sharded point is run twice and its metrics
// fingerprints compared, so each record carries a determinism verdict.
//
// Each benchmark is calibrated and timed by testing.Benchmark, so ns/op
// and allocs/op match what `go test -bench` would report. The record
// schemas are documented in EXPERIMENTS.md ("Inference benchmarks",
// "Scale benchmarks").
package main

import (
	"crypto/md5"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"distcoord/internal/clicfg"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
	"distcoord/internal/traffic"
)

// meta is the first record of every benchmark file: it pins the
// environment so results from different machines are not compared
// blindly.
type meta struct {
	Record     string `json:"record"` // always "meta"
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"`   // -jobs (0: all CPUs)
	Batch      int    `json:"batch"`  // -batch (0 or 1: sequential)
	Shards     int    `json:"shards"` // -shards (0 or 1: sequential engine)
	UnixTime   int64  `json:"unix_time"`
}

// result is one benchmark measurement.
type result struct {
	Record      string  `json:"record"` // always "bench"
	Bench       string  `json:"bench"`  // "forward" | "decide" | "episode"
	Variant     string  `json:"variant,omitempty"`
	Topology    string  `json:"topology,omitempty"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// scaleResult is one scale-harness measurement: full episodes on an
// n-node synthetic topology with a given decision batch size.
type scaleResult struct {
	Record      string  `json:"record"` // always "scale"
	Nodes       int     `json:"nodes"`
	Batch       int     `json:"batch"`  // MaxBatch (0: sequential path)
	Shards      int     `json:"shards"` // event-loop shards (1: sequential engine)
	Arrived     int     `json:"arrived"`
	Decisions   int     `json:"decisions"`
	Episodes    int     `json:"episodes"`
	WallMs      float64 `json:"wall_ms"` // per episode
	FlowsPerSec float64 `json:"flows_per_sec"`
	Speedup     float64 `json:"speedup"` // flows/sec vs sequential, same nodes
	// Handoffs counts cross-shard flow handoffs per episode (shard sweep
	// only); Deterministic reports whether two runs of the same
	// configuration produced byte-identical metrics (shard sweep only —
	// bench_check.sh fails the build on a false value).
	Handoffs      int   `json:"handoffs,omitempty"`
	Deterministic *bool `json:"deterministic,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_inference.json", "JSONL output path")
	topology := flag.String("topology", "Abilene", "topology for the decide and episode benchmarks")
	scale := flag.Bool("scale", false, "run the scale harness (synthetic 100/500/1000 nodes, sequential vs batched) instead of the inference benchmarks")
	rpc := flag.Bool("rpc", false, "measure decision RTT in-process vs across agentnet sockets (use -out BENCH_rpc.json)")
	shared := clicfg.Register(flag.CommandLine)
	flag.Parse()

	// The shared surface matters here for the profiling flags: profiling
	// a benchmark run is the natural way to inspect the hot path.
	rt, err := shared.Apply()
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	sink, err := telemetry.NewSink(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer sink.Close()
	if err := sink.Emit(meta{
		Record:     "meta",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       rt.Jobs(),
		Batch:      rt.Batch(),
		Shards:     rt.Shards(),
		UnixTime:   time.Now().Unix(),
	}); err != nil {
		log.Fatal(err)
	}

	emit := func(bench, variant, topo string, r testing.BenchmarkResult) {
		rec := result{
			Record:      "bench",
			Bench:       bench,
			Variant:     variant,
			Topology:    topo,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if err := sink.Emit(rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12s %-10s %10d iters %12.0f ns/op %6d allocs/op\n",
			bench, variant, topo, rec.Iters, rec.NsPerOp, rec.AllocsPerOp)
	}

	var benchErr error
	switch {
	case *rpc:
		benchErr = runRPC(sink, *topology)
	case *scale:
		benchErr = runScale(sink, rt.Batch(), rt.Shards())
	default:
		benchErr = run(emit, *topology, rt.Batch())
	}
	if benchErr != nil {
		sink.Close()
		log.Fatal(benchErr)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	os.Exit(0)
}

func run(emit func(bench, variant, topo string, r testing.BenchmarkResult), topology string, maxBatch int) error {
	s := eval.Base()
	s.Topology = topology
	inst, err := s.Instantiate(1)
	if err != nil {
		return err
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{256, 256}, // the paper's deployed network shape
	})
	if err != nil {
		return err
	}

	// Forward pass: allocating baseline vs. workspace-reusing hot path.
	obs := make([]float64, adapter.ObsSize())
	rng := rand.New(rand.NewSource(1))
	for i := range obs {
		obs[i] = rng.Float64()*2 - 1
	}
	actor := agent.Actor
	emit("forward", "alloc", "", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			actor.Forward(obs)
		}
	}))
	ws := actor.NewWorkspace()
	emit("forward", "into", "", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			actor.ForwardInto(ws, obs)
		}
	}))

	// Full decision at one node, both decision modes.
	dist, err := coord.NewDistributed(adapter, actor)
	if err != nil {
		return err
	}
	st := simnet.NewState(inst.Graph, inst.APSP)
	flow := &simnet.Flow{
		Service: inst.Service, Egress: s.Egress,
		Rate: 1, Duration: 1, Deadline: s.Deadline,
	}
	for _, mode := range []struct {
		name       string
		stochastic bool
	}{{"stochastic", true}, {"argmax", false}} {
		dist.Stochastic = mode.stochastic
		emit("decide", mode.name, topology, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dist.Decide(st, flow, 0, 1)
			}
		}))
	}

	// One full simulated episode under the DRL coordinator (reduced
	// horizon: the paper-scale 20000 would make one iteration minutes).
	ep := s
	ep.Horizon = 300
	epInst, err := ep.Instantiate(1)
	if err != nil {
		return err
	}
	epAdapter := coord.NewAdapter(epInst.Graph, epInst.APSP)
	epDist, err := coord.NewDistributed(epAdapter, actor)
	if err != nil {
		return err
	}
	// -batch applies here: episodes honor batched decision resolution.
	emit("episode", "drl", topology, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			epDist.Reseed(int64(i) + 1)
			if _, err := epInst.RunWith(epDist, eval.RunOptions{MaxBatch: maxBatch}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return nil
}

// scaleScenario builds the scale-harness scenario: an n-node synthetic
// topology with uniform capacities and bursty arrivals (16 simultaneous
// flows per ingress every 20 time units), so same-(node, time) decision
// windows hold real multi-flow cohorts for the batcher to exploit.
func scaleScenario(n int) eval.Scenario {
	g := graph.SyntheticScale(n, 0x5CA1E)
	for v := 0; v < g.NumNodes(); v++ {
		g.SetNodeCapacity(graph.NodeID(v), 40)
	}
	for l := 0; l < g.NumLinks(); l++ {
		g.SetLinkCapacity(l, 40)
	}
	return eval.Scenario{
		Graph:        g,
		IngressNodes: []graph.NodeID{2, 5, 9, 14},
		Egress:       1,
		Traffic:      traffic.BurstSpec(20, 16),
		Deadline:     100,
		Horizon:      400,
	}
}

// runScale measures end-to-end episode throughput (flows per second) on
// growing synthetic topologies, sequential versus batched. The paper's
// deployed network shape (2x256) serves decisions in argmax mode, so
// burst cohorts see identical observations, pick identical actions, and
// travel together — the steady state a scaled-out deployment batches.
// A -batch value > 1 replaces the default batch-size sweep.
func runScale(sink *telemetry.Sink, batch, shards int) error {
	batches := []int{0, 4, 16}
	if batch > 1 {
		batches = []int{0, batch}
	}
	for _, n := range []int{100, 500, 1000} {
		s := scaleScenario(n)
		inst, err := s.Instantiate(1)
		if err != nil {
			return err
		}
		adapter := coord.NewAdapter(inst.Graph, inst.APSP)
		agent, err := rl.NewAgent(rl.AgentConfig{
			ObsSize:    adapter.ObsSize(),
			NumActions: adapter.NumActions(),
			Hidden:     []int{256, 256},
		})
		if err != nil {
			return err
		}
		dist, err := coord.NewDistributed(adapter, agent.Actor)
		if err != nil {
			return err
		}
		dist.Stochastic = false
		var baseline float64
		for _, mb := range batches {
			opts := eval.RunOptions{MaxBatch: mb}
			m, err := inst.RunWith(dist, opts) // warm-up; metrics are run-invariant
			if err != nil {
				return err
			}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := inst.RunWith(dist, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			wallMs := float64(r.T.Nanoseconds()) / float64(r.N) / 1e6
			rec := scaleResult{
				Record:      "scale",
				Nodes:       n,
				Batch:       mb,
				Shards:      1,
				Arrived:     m.Arrived,
				Decisions:   m.Decisions,
				Episodes:    r.N,
				WallMs:      wallMs,
				FlowsPerSec: float64(m.Arrived) / (wallMs / 1e3),
				Speedup:     1,
			}
			if mb == 0 {
				baseline = rec.FlowsPerSec
			} else if baseline > 0 {
				rec.Speedup = rec.FlowsPerSec / baseline
			}
			if err := sink.Emit(rec); err != nil {
				return err
			}
			fmt.Printf("scale nodes=%-5d batch=%-3d %8.1f ms/episode %10.0f flows/sec %6.2fx\n",
				n, mb, rec.WallMs, rec.FlowsPerSec, rec.Speedup)
		}
	}
	return runShardScale(sink, shards)
}

// shardScaleScenario builds the sharded-scale workload: the n-node
// synthetic topology with eight ingresses spread by region partitioning,
// each paired with a nearby egress two hops out. Localized ingress/egress
// pairs keep most flows inside their event-loop shard, which is the
// deployment shape the conservative lookahead scales best on; the
// remainder crosses shards and exercises the handoff path.
func shardScaleScenario(n int) eval.Scenario {
	s := scaleScenario(n)
	g := s.Graph
	regions := graph.PartitionRegions(g, 8)
	picked := make([]bool, 8)
	s.IngressNodes = s.IngressNodes[:0]
	s.IngressEgresses = nil
	for v := 0; v < g.NumNodes() && len(s.IngressNodes) < 8; v++ {
		r := regions[v]
		if picked[r] {
			continue
		}
		picked[r] = true
		in := graph.NodeID(v)
		eg := g.Neighbors(in)[0].Neighbor
		if hop := g.Neighbors(eg); len(hop) > 1 && hop[0].Neighbor != in {
			eg = hop[0].Neighbor
		} else if len(hop) > 1 {
			eg = hop[1].Neighbor
		}
		s.IngressNodes = append(s.IngressNodes, in)
		s.IngressEgresses = append(s.IngressEgresses, eg)
	}
	s.Egress = s.IngressEgresses[0]
	return s
}

// handoffTally records the cumulative cross-shard handoff count each
// shard reports at the epoch barriers; totals reflect the most recent
// completed run.
type handoffTally struct{ perShard map[int]int }

func (t *handoffTally) OnShardEpoch(shard, epoch, heapDepth, handoffs int) {
	t.perShard[shard] = handoffs
}

func (t *handoffTally) total() int {
	n := 0
	for _, h := range t.perShard {
		n += h
	}
	return n
}

// fingerprint reduces a metrics struct to a comparable digest; two runs
// of a deterministic configuration must produce identical fingerprints
// (including the full delay sample vector, which is sensitive to event
// ordering).
func fingerprint(m *simnet.Metrics) string {
	data, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf("%x", md5.Sum(data))
}

// runShardScale measures the sharded event loop at the largest scale
// point (1000 nodes) with batched argmax decisions: shards 1 versus 2
// versus 4 (or -shards to pin the multi-shard point). Speedup is
// flows/sec relative to the single-shard engine on the identical
// workload. Each sharded configuration runs twice before timing; the
// emitted record carries whether the two runs' metrics fingerprints
// matched, so regressions of the determinism contract surface in the
// benchmark artifact itself (bench_check.sh rejects a false value).
func runShardScale(sink *telemetry.Sink, shards int) error {
	sweep := []int{1, 2, 4}
	if shards > 1 {
		sweep = []int{1, shards}
	}
	const n = 1000
	s := shardScaleScenario(n)
	inst, err := s.Instantiate(1)
	if err != nil {
		return err
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{256, 256},
	})
	if err != nil {
		return err
	}
	dist, err := coord.NewDistributed(adapter, agent.Actor)
	if err != nil {
		return err
	}
	dist.Stochastic = false
	var baseline float64
	for _, k := range sweep {
		tally := &handoffTally{perShard: map[int]int{}}
		opts := eval.RunOptions{MaxBatch: 16}
		if k > 1 {
			opts.Shards = k
			opts.ShardObserver = tally
		}
		m, err := inst.RunWith(dist, opts)
		if err != nil {
			return err
		}
		m2, err := inst.RunWith(dist, opts)
		if err != nil {
			return err
		}
		det := fingerprint(m) == fingerprint(m2)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inst.RunWith(dist, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		wallMs := float64(r.T.Nanoseconds()) / float64(r.N) / 1e6
		rec := scaleResult{
			Record:        "scale",
			Nodes:         n,
			Batch:         16,
			Shards:        k,
			Arrived:       m.Arrived,
			Decisions:     m.Decisions,
			Episodes:      r.N,
			WallMs:        wallMs,
			FlowsPerSec:   float64(m.Arrived) / (wallMs / 1e3),
			Speedup:       1,
			Handoffs:      tally.total(),
			Deterministic: &det,
		}
		if k == 1 {
			baseline = rec.FlowsPerSec
		} else if baseline > 0 {
			rec.Speedup = rec.FlowsPerSec / baseline
		}
		if err := sink.Emit(rec); err != nil {
			return err
		}
		fmt.Printf("scale nodes=%-5d shards=%-2d %8.1f ms/episode %10.0f flows/sec %6.2fx deterministic=%t handoffs=%d\n",
			n, k, rec.WallMs, rec.FlowsPerSec, rec.Speedup, det, rec.Handoffs)
	}
	return nil
}
