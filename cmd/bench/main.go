// Command bench measures the per-decision inference hot path and emits
// machine-readable results as JSONL (one record per benchmark) through
// the telemetry sink. It covers the three levels of the hot path:
//
//   - forward: one actor forward pass (allocating vs. workspace-reusing)
//   - decide: a full distributed decision (observe + forward + act),
//     in both stochastic and argmax mode
//   - episode: one full simulated episode under the DRL coordinator
//
// Each benchmark is calibrated and timed by testing.Benchmark, so ns/op
// and allocs/op match what `go test -bench` would report. The record
// schema is documented in EXPERIMENTS.md ("Inference benchmarks").
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"distcoord/internal/clicfg"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// meta is the first record of every benchmark file: it pins the
// environment so results from different machines are not compared
// blindly.
type meta struct {
	Record    string `json:"record"` // always "meta"
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	UnixTime  int64  `json:"unix_time"`
}

// result is one benchmark measurement.
type result struct {
	Record      string  `json:"record"` // always "bench"
	Bench       string  `json:"bench"`  // "forward" | "decide" | "episode"
	Variant     string  `json:"variant,omitempty"`
	Topology    string  `json:"topology,omitempty"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	out := flag.String("out", "BENCH_inference.json", "JSONL output path")
	topology := flag.String("topology", "Abilene", "topology for the decide and episode benchmarks")
	shared := clicfg.Register(flag.CommandLine)
	flag.Parse()

	// The shared surface matters here for the profiling flags: profiling
	// a benchmark run is the natural way to inspect the hot path.
	rt, err := shared.Apply()
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	sink, err := telemetry.NewSink(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer sink.Close()
	if err := sink.Emit(meta{
		Record:    "meta",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		UnixTime:  time.Now().Unix(),
	}); err != nil {
		log.Fatal(err)
	}

	emit := func(bench, variant, topo string, r testing.BenchmarkResult) {
		rec := result{
			Record:      "bench",
			Bench:       bench,
			Variant:     variant,
			Topology:    topo,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if err := sink.Emit(rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12s %-10s %10d iters %12.0f ns/op %6d allocs/op\n",
			bench, variant, topo, rec.Iters, rec.NsPerOp, rec.AllocsPerOp)
	}

	if err := run(emit, *topology); err != nil {
		sink.Close()
		log.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	os.Exit(0)
}

func run(emit func(bench, variant, topo string, r testing.BenchmarkResult), topology string) error {
	s := eval.Base()
	s.Topology = topology
	inst, err := s.Instantiate(1)
	if err != nil {
		return err
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{256, 256}, // the paper's deployed network shape
	})
	if err != nil {
		return err
	}

	// Forward pass: allocating baseline vs. workspace-reusing hot path.
	obs := make([]float64, adapter.ObsSize())
	rng := rand.New(rand.NewSource(1))
	for i := range obs {
		obs[i] = rng.Float64()*2 - 1
	}
	actor := agent.Actor
	emit("forward", "alloc", "", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			actor.Forward(obs)
		}
	}))
	ws := actor.NewWorkspace()
	emit("forward", "into", "", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			actor.ForwardInto(ws, obs)
		}
	}))

	// Full decision at one node, both decision modes.
	dist, err := coord.NewDistributed(adapter, actor)
	if err != nil {
		return err
	}
	st := simnet.NewState(inst.Graph, inst.APSP)
	flow := &simnet.Flow{
		Service: inst.Service, Egress: s.Egress,
		Rate: 1, Duration: 1, Deadline: s.Deadline,
	}
	for _, mode := range []struct {
		name       string
		stochastic bool
	}{{"stochastic", true}, {"argmax", false}} {
		dist.Stochastic = mode.stochastic
		emit("decide", mode.name, topology, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dist.Decide(st, flow, 0, 1)
			}
		}))
	}

	// One full simulated episode under the DRL coordinator (reduced
	// horizon: the paper-scale 20000 would make one iteration minutes).
	ep := s
	ep.Horizon = 300
	epInst, err := ep.Instantiate(1)
	if err != nil {
		return err
	}
	epAdapter := coord.NewAdapter(epInst.Graph, epInst.APSP)
	epDist, err := coord.NewDistributed(epAdapter, actor)
	if err != nil {
		return err
	}
	emit("episode", "drl", topology, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			epDist.Reseed(int64(i) + 1)
			if _, err := epInst.Run(epDist); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return nil
}
