// Command train runs the centralized training procedure (Alg. 1) for the
// distributed DRL coordinator on a chosen scenario and saves the selected
// actor network to disk. The saved policy can be evaluated later with
// -eval, mirroring the paper's train-offline / deploy-distributed split.
//
// Usage:
//
//	train -out agent.json -ingresses 3 -episodes 400
//	train -episode-log episodes.jsonl          # JSONL training telemetry
//	train -eval agent.json -ingresses 3        # evaluate a saved policy
//	train -eval agent.json -flow-trace t.jsonl # ... with per-flow traces
//	train -cpuprofile cpu.pprof -pprof :6060   # profile the run
package main

import (
	"flag"
	"fmt"
	"os"

	"distcoord/internal/chaos"
	"distcoord/internal/clicfg"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/nn"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
	"distcoord/internal/traffic"
)

// cliConfig collects the parsed command line.
type cliConfig struct {
	out, evalPath     string
	topology, pattern string
	ingresses         int
	deadline          float64
	episodes          int
	seeds, envs       int
	horizon           float64
	evalSeeds         int
	greedy            bool
	shared            *clicfg.Flags
}

func main() {
	var c cliConfig
	flag.StringVar(&c.out, "out", "agent.json", "output path for the trained actor network")
	flag.StringVar(&c.evalPath, "eval", "", "evaluate a saved actor instead of training")
	flag.StringVar(&c.topology, "topology", "Abilene", "network topology")
	flag.StringVar(&c.pattern, "pattern", "poisson", "arrival pattern: fixed, poisson, mmpp, trace")
	flag.IntVar(&c.ingresses, "ingresses", 2, "number of ingress nodes")
	flag.Float64Var(&c.deadline, "deadline", 100, "flow deadline τ")
	flag.IntVar(&c.episodes, "episodes", 300, "training update iterations per seed")
	flag.IntVar(&c.seeds, "train-seeds", 2, "independently trained agents k (paper: 10)")
	flag.IntVar(&c.envs, "envs", 4, "parallel training environments l (paper: 4)")
	flag.Float64Var(&c.horizon, "train-horizon", 1000, "training episode horizon")
	flag.IntVar(&c.evalSeeds, "eval-seeds", 3, "evaluation seeds (with -eval)")
	flag.BoolVar(&c.greedy, "greedy", false, "deterministic argmax inference instead of sampling (with -eval)")
	c.shared = clicfg.Register(flag.CommandLine)
	flag.Parse()

	if err := run(&c); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run(c *cliConfig) error {
	s := eval.Base()
	s.Topology = c.topology
	s.NumIngresses = c.ingresses
	s.Deadline = c.deadline
	switch c.pattern {
	case "fixed":
		s.Traffic = traffic.FixedSpec(10)
	case "poisson":
		s.Traffic = traffic.PoissonSpec(10)
	case "mmpp":
		s.Traffic = traffic.MMPPSpec(12, 8, 100, 0.05)
	case "trace":
		s.Traffic = traffic.SyntheticTraceSpec(10, 2, 4)
	default:
		return fmt.Errorf("unknown pattern %q", c.pattern)
	}
	s.Horizon = 2000

	rt, err := c.shared.Apply()
	if err != nil {
		return err
	}
	defer rt.Close()
	// Fault injection perturbs the evaluation scenario only; training
	// stays fault-free, matching the paper's train-clean / deploy-messy
	// robustness question.
	if c.evalPath != "" {
		rt.SetObsInfo("mode", "eval")
		rt.SetObsInfo("topology", c.topology)
		s.Faults = rt.FaultSpec()
		if err := evaluateSaved(s, c.evalPath, c.evalSeeds, c.greedy, rt); err != nil {
			return err
		}
		return rt.Close()
	}

	budget := eval.TrainBudget{
		Episodes:     c.episodes,
		ParallelEnvs: c.envs,
		Seeds:        c.seeds,
		Horizon:      c.horizon,
		Hidden:       []int{32, 32},
		Progress: func(seed, ep int, st rl.UpdateStats, score float64) {
			if ep%25 == 0 {
				fmt.Fprintf(os.Stderr, "seed %d episode %4d: success=%.3f return=%.2f entropy=%.3f kl=%.5f\n",
					seed, ep, score, st.MeanReturn, st.Entropy, st.KL)
			}
		},
	}

	// Telemetry: the shared per-episode hook feeds the JSONL episode log
	// (Fig. 5-style training curves), the runtime registry's phase wall
	// times, and the live /run training section when -obs-addr is on.
	rt.SetObsInfo("mode", "train")
	rt.SetObsInfo("topology", c.topology)
	reg := rt.Registry()
	budget.OnEpisode = func(rec rl.EpisodeRecord) { rt.OnEpisode(rec) }

	policy, err := eval.TrainDRL(s, budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "best seed %d (score %.3f); per-seed scores %v\n",
		policy.Stats.BestSeed, policy.Stats.BestScore, policy.Stats.SeedScores)
	for name, h := range map[string]*telemetry.Histogram{
		"rollout": reg.Histogram("train.rollout_ms"),
		"update":  reg.Histogram("train.update_ms"),
	} {
		s := h.Snapshot()
		fmt.Fprintf(os.Stderr, "%s wall time per episode: p50=%.1fms p95=%.1fms p99=%.1fms (n=%d)\n",
			name, s.P50, s.P95, s.P99, s.Count)
	}

	// Atomic write (temp file + fsync + rename): a crash mid-write must
	// not leave a truncated, loadable-looking weights file behind.
	if err := policy.Agent.Actor.SaveFile(c.out); err != nil {
		return err
	}
	fmt.Printf("saved trained actor to %s\n", c.out)
	return rt.Close()
}

// evaluateSaved loads an actor network and evaluates it on the scenario,
// optionally writing per-flow traces of the first evaluation seed and —
// under -faults — the recovery metrics of a monitored fault run.
func evaluateSaved(s eval.Scenario, path string, seeds int, greedy bool, rt *clicfg.Runtime) error {
	actor, err := nn.LoadFile(path)
	if err != nil {
		return err
	}
	factory := func(inst *eval.Instance, seed int64) (simnet.Coordinator, error) {
		adapter := coord.NewAdapter(inst.Graph, inst.APSP)
		d, err := coord.NewDistributed(adapter, actor)
		if err != nil {
			return nil, err
		}
		d.Stochastic = !greedy
		d.Reseed(seed)
		return d, nil
	}

	tracer := rt.Tracer()
	if tracer != nil || rt.FaultSpec().Enabled() {
		inst, err := s.Instantiate(0)
		if err != nil {
			return err
		}
		c, err := factory(inst, 0)
		if err != nil {
			return err
		}
		opts := eval.RunOptions{Tracer: tracer}
		var monitor *chaos.Monitor
		if rt.FaultSpec().Enabled() {
			monitor = chaos.NewMonitor(inst.Chaos, 0)
			opts.Listener = monitor
		}
		m, err := inst.RunWith(c, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "seed 0: %d flows, success %.3f\n", m.Arrived, m.SuccessRatio())
		if monitor != nil {
			fmt.Printf("faults applied (seed 0): %d (%s)\n", m.Faults, inst.Chaos.Spec.String())
			for _, r := range monitor.Report() {
				rec := "never recovered"
				if r.RecoveryTime >= 0 {
					rec = fmt.Sprintf("recovered in %.0f", r.RecoveryTime)
				}
				fmt.Printf("  t=%-7.0f %-13s dip %.3f, %s, %d drops\n", r.Time, r.Kind, r.DipDepth, rec, r.Drops)
			}
		}
	}

	o, err := eval.Evaluate(s, factory, seeds, 0)
	if err != nil {
		return err
	}
	fmt.Printf("DistDRL (%s): success=%s avg delay=%s\n", path, o.Succ, o.Delay)
	return nil
}
