// Command train runs the centralized training procedure (Alg. 1) for the
// distributed DRL coordinator on a chosen scenario and saves the selected
// actor network to disk. The saved policy can be evaluated later with
// -eval, mirroring the paper's train-offline / deploy-distributed split.
//
// Usage:
//
//	train -out agent.json -ingresses 3 -episodes 400
//	train -eval agent.json -ingresses 3        # evaluate a saved policy
package main

import (
	"flag"
	"fmt"
	"os"

	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/nn"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

func main() {
	var (
		out       = flag.String("out", "agent.json", "output path for the trained actor network")
		evalPath  = flag.String("eval", "", "evaluate a saved actor instead of training")
		topology  = flag.String("topology", "Abilene", "network topology")
		pattern   = flag.String("pattern", "poisson", "arrival pattern: fixed, poisson, mmpp, trace")
		ingresses = flag.Int("ingresses", 2, "number of ingress nodes")
		deadline  = flag.Float64("deadline", 100, "flow deadline τ")
		episodes  = flag.Int("episodes", 300, "training update iterations per seed")
		seeds     = flag.Int("train-seeds", 2, "independently trained agents k (paper: 10)")
		envs      = flag.Int("envs", 4, "parallel training environments l (paper: 4)")
		horizon   = flag.Float64("train-horizon", 1000, "training episode horizon")
		evalSeeds = flag.Int("eval-seeds", 3, "evaluation seeds (with -eval)")
	)
	flag.Parse()

	s := eval.Base()
	s.Topology = *topology
	s.NumIngresses = *ingresses
	s.Deadline = *deadline
	switch *pattern {
	case "fixed":
		s.Traffic = traffic.FixedSpec(10)
	case "poisson":
		s.Traffic = traffic.PoissonSpec(10)
	case "mmpp":
		s.Traffic = traffic.MMPPSpec(12, 8, 100, 0.05)
	case "trace":
		s.Traffic = traffic.SyntheticTraceSpec(10, 2, 4)
	default:
		fmt.Fprintf(os.Stderr, "train: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	s.Horizon = 2000

	if *evalPath != "" {
		if err := evaluateSaved(s, *evalPath, *evalSeeds); err != nil {
			fmt.Fprintln(os.Stderr, "train:", err)
			os.Exit(1)
		}
		return
	}

	budget := eval.TrainBudget{
		Episodes:     *episodes,
		ParallelEnvs: *envs,
		Seeds:        *seeds,
		Horizon:      *horizon,
		Hidden:       []int{32, 32},
		Progress: func(seed, ep int, st rl.UpdateStats, score float64) {
			if ep%25 == 0 {
				fmt.Fprintf(os.Stderr, "seed %d episode %4d: success=%.3f return=%.2f entropy=%.3f kl=%.5f\n",
					seed, ep, score, st.MeanReturn, st.Entropy, st.KL)
			}
		},
	}
	policy, err := eval.TrainDRL(s, budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "best seed %d (score %.3f); per-seed scores %v\n",
		policy.Stats.BestSeed, policy.Stats.BestScore, policy.Stats.SeedScores)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := policy.Agent.Actor.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	fmt.Printf("saved trained actor to %s\n", *out)
}

// evaluateSaved loads an actor network and evaluates it on the scenario.
func evaluateSaved(s eval.Scenario, path string, seeds int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	actor, err := nn.Load(f)
	if err != nil {
		return err
	}
	factory := func(inst *eval.Instance, seed int64) (simnet.Coordinator, error) {
		adapter := coord.NewAdapter(inst.Graph, inst.APSP)
		d, err := coord.NewDistributed(adapter, actor)
		if err != nil {
			return nil, err
		}
		d.Reseed(seed)
		return d, nil
	}
	o, err := eval.Evaluate(s, factory, seeds, 0)
	if err != nil {
		return err
	}
	fmt.Printf("DistDRL (%s): success=%s avg delay=%s\n", path, o.Succ, o.Delay)
	return nil
}
