package main

import (
	"os"
	"path/filepath"
	"testing"

	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/rl"
)

func TestEvaluateSaved(t *testing.T) {
	s := eval.Base()
	s.Horizon = 300

	// Build and save a (random-weight) actor of the right shape.
	inst, err := s.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "agent.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Actor.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := evaluateSaved(s, path, 1); err != nil {
		t.Errorf("evaluateSaved: %v", err)
	}
	if err := evaluateSaved(s, filepath.Join(t.TempDir(), "missing.json"), 1); err == nil {
		t.Error("accepted missing agent file")
	}
}

func TestEvaluateSavedRejectsWrongShape(t *testing.T) {
	s := eval.Base()
	s.Horizon = 300
	agent, err := rl.NewAgent(rl.AgentConfig{ObsSize: 3, NumActions: 2, Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wrong.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Actor.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := evaluateSaved(s, path, 1); err == nil {
		t.Error("accepted actor with mismatched observation size")
	}
}
