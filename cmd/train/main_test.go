package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"distcoord/internal/clicfg"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// plainRuntime resolves an empty shared-flag set (no sinks, no
// profiling) for tests that drive evaluateSaved directly.
func plainRuntime(t *testing.T) *clicfg.Runtime {
	t.Helper()
	rt, err := (&clicfg.Flags{}).Apply()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// TestRunWritesParseableEpisodeLog pins the telemetry acceptance
// criterion: a training run with -episode-log writes JSONL that parses
// line by line and covers every (seed, episode) pair exactly once.
func TestRunWritesParseableEpisodeLog(t *testing.T) {
	dir := t.TempDir()
	c := cliConfig{
		out:       filepath.Join(dir, "agent.json"),
		topology:  "Abilene",
		pattern:   "fixed",
		ingresses: 1,
		deadline:  100,
		episodes:  3,
		seeds:     2,
		envs:      2,
		horizon:   60,
		shared:    &clicfg.Flags{EpisodeLog: filepath.Join(dir, "episodes.jsonl")},
	}
	if err := run(&c); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(c.shared.EpisodeLog)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seen := make(map[[2]int]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec rl.EpisodeRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable episode log line: %v\n%s", err, sc.Text())
		}
		key := [2]int{rec.Seed, rec.Episode}
		if seen[key] {
			t.Errorf("duplicate record for %v", key)
		}
		seen[key] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < c.seeds; s++ {
		for ep := 0; ep < c.episodes; ep++ {
			if !seen[[2]int{s, ep}] {
				t.Errorf("episode log missing (seed=%d, episode=%d)", s, ep)
			}
		}
	}
	if len(seen) != c.seeds*c.episodes {
		t.Errorf("records = %d, want %d", len(seen), c.seeds*c.episodes)
	}
	if _, err := os.Stat(c.out); err != nil {
		t.Errorf("trained actor not saved: %v", err)
	}
}

// TestEvaluateSavedWritesFlowTrace checks the -eval -flow-trace path:
// the JSONL trace parses back into simnet.TraceEvents and covers every
// arrived flow.
func TestEvaluateSavedWritesFlowTrace(t *testing.T) {
	s := eval.Base()
	s.Horizon = 300

	inst, err := s.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "agent.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Actor.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tracePath := filepath.Join(dir, "trace.jsonl")
	rt, err := (&clicfg.Flags{FlowTrace: tracePath}).Apply()
	if err != nil {
		t.Fatal(err)
	}
	if err := evaluateSaved(s, path, 1, false, rt); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	arrivals := 0
	sc := bufio.NewScanner(tf)
	for sc.Scan() {
		var e simnet.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable trace line: %v\n%s", err, sc.Text())
		}
		if e.Kind == simnet.TraceArrival {
			arrivals++
		}
	}
	if arrivals == 0 {
		t.Error("flow trace contains no arrivals")
	}
}

func TestEvaluateSaved(t *testing.T) {
	s := eval.Base()
	s.Horizon = 300

	// Build and save a (random-weight) actor of the right shape.
	inst, err := s.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "agent.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Actor.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rt := plainRuntime(t)
	if err := evaluateSaved(s, path, 1, false, rt); err != nil {
		t.Errorf("evaluateSaved: %v", err)
	}
	if err := evaluateSaved(s, filepath.Join(t.TempDir(), "missing.json"), 1, false, rt); err == nil {
		t.Error("accepted missing agent file")
	}
}

func TestEvaluateSavedRejectsWrongShape(t *testing.T) {
	s := eval.Base()
	s.Horizon = 300
	agent, err := rl.NewAgent(rl.AgentConfig{ObsSize: 3, NumActions: 2, Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wrong.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Actor.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := evaluateSaved(s, path, 1, false, plainRuntime(t)); err == nil {
		t.Error("accepted actor with mismatched observation size")
	}
}
