//go:build !linux

package main

import "syscall"

// sysProcAttr has no parent-death signal outside Linux; the signal
// reaper and fleet.stop cover the portable shutdown paths.
func sysProcAttr() *syscall.SysProcAttr { return nil }
