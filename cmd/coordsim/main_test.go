package main

import "testing"

func TestPatternSpec(t *testing.T) {
	for _, name := range []string{"fixed", "poisson", "mmpp", "trace"} {
		spec, err := patternSpec(name)
		if err != nil {
			t.Errorf("patternSpec(%q): %v", name, err)
			continue
		}
		if spec.New == nil {
			t.Errorf("patternSpec(%q) has nil factory", name)
		}
	}
	if _, err := patternSpec("nope"); err == nil {
		t.Error("patternSpec accepted unknown pattern")
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	if err := run("quantum", "Abilene", "", "poisson", 1, 100, 100, 0, 1); err == nil {
		t.Error("run accepted unknown algorithm")
	}
}

func TestRunRejectsUnknownPattern(t *testing.T) {
	if err := run("sp", "Abilene", "", "bursty", 1, 100, 100, 0, 1); err == nil {
		t.Error("run accepted unknown pattern")
	}
}

func TestRunSPQuick(t *testing.T) {
	if err := run("sp", "Abilene", "", "fixed", 1, 100, 300, 0, 1); err != nil {
		t.Errorf("run(sp): %v", err)
	}
}

func TestRunRejectsMissingTopologyFile(t *testing.T) {
	if err := run("sp", "Abilene", "/nonexistent/topo.txt", "fixed", 1, 100, 300, 0, 1); err == nil {
		t.Error("run accepted missing topology file")
	}
}
