package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"distcoord/internal/clicfg"
	"distcoord/internal/simnet"
)

func TestPatternSpec(t *testing.T) {
	for _, name := range []string{"fixed", "poisson", "mmpp", "trace"} {
		spec, err := patternSpec(name)
		if err != nil {
			t.Errorf("patternSpec(%q): %v", name, err)
			continue
		}
		if spec.New == nil {
			t.Errorf("patternSpec(%q) has nil factory", name)
		}
	}
	if _, err := patternSpec("nope"); err == nil {
		t.Error("patternSpec accepted unknown pattern")
	}
}

// base returns a fast single-run configuration for tests.
func base() runConfig {
	return runConfig{
		algo:      "sp",
		topology:  "Abilene",
		pattern:   "fixed",
		ingresses: 1,
		deadline:  100,
		horizon:   300,
		episodes:  1,
		shared:    &clicfg.Flags{},
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	c := base()
	c.algo = "quantum"
	if err := run(&c); err == nil {
		t.Error("run accepted unknown algorithm")
	}
}

func TestRunRejectsUnknownPattern(t *testing.T) {
	c := base()
	c.pattern = "bursty"
	if err := run(&c); err == nil {
		t.Error("run accepted unknown pattern")
	}
}

func TestRunSPQuick(t *testing.T) {
	c := base()
	if err := run(&c); err != nil {
		t.Errorf("run(sp): %v", err)
	}
}

func TestRunRejectsMissingTopologyFile(t *testing.T) {
	c := base()
	c.topoFile = "/nonexistent/topo.txt"
	if err := run(&c); err == nil {
		t.Error("run accepted missing topology file")
	}
}

// TestRunWritesFlowTraceAndMetrics checks the telemetry outputs: the
// JSONL flow trace parses into simnet.TraceEvents, and the metrics
// summary JSON agrees with the trace.
func TestRunWritesFlowTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	c := base()
	c.shared.FlowTrace = filepath.Join(dir, "flows.jsonl")
	c.shared.MetricsOut = filepath.Join(dir, "metrics.json")
	if err := run(&c); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(c.shared.FlowTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	arrivals, completes := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e simnet.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable trace line: %v\n%s", err, sc.Text())
		}
		switch e.Kind {
		case simnet.TraceArrival:
			arrivals++
		case simnet.TraceComplete:
			completes++
		}
	}
	if arrivals == 0 {
		t.Error("flow trace contains no arrivals")
	}

	data, err := os.ReadFile(c.shared.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var sum metricsSummary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("unparseable metrics summary: %v", err)
	}
	if sum.Algorithm != "sp" {
		t.Errorf("summary algorithm = %q", sum.Algorithm)
	}
	if sum.Arrived != arrivals {
		t.Errorf("summary arrived = %d, trace saw %d arrival events", sum.Arrived, arrivals)
	}
	if sum.Succeeded != completes {
		t.Errorf("summary succeeded = %d, trace saw %d completions", sum.Succeeded, completes)
	}
	if sum.Succeeded+sum.Dropped > sum.Arrived {
		t.Errorf("inconsistent summary: %d succeeded + %d dropped > %d arrived",
			sum.Succeeded, sum.Dropped, sum.Arrived)
	}
	if sum.DelayP50 > sum.DelayP95 || sum.DelayP95 > sum.DelayP99 {
		t.Errorf("non-monotone delay quantiles: p50=%g p95=%g p99=%g",
			sum.DelayP50, sum.DelayP95, sum.DelayP99)
	}
}
