//go:build linux

package main

import "syscall"

// sysProcAttr arms the parent-death signal on spawned agentd processes:
// if coordsim dies without running its cleanup paths (SIGKILL, panic,
// OOM kill), the kernel delivers SIGKILL to the children instead of
// leaving orphan daemons holding ports.
func sysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
