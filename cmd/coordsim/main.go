// Command coordsim runs a single service coordination simulation and
// prints the resulting metrics: pick a topology, a traffic pattern, a
// load level, and a coordination algorithm.
//
// Usage:
//
//	coordsim -algo gcasp -topology Abilene -pattern poisson -ingresses 3
//	coordsim -algo sp -pattern fixed -horizon 20000 -seed 7
//	coordsim -algo drl -train-episodes 200     # trains first, then runs
package main

import (
	"flag"
	"fmt"
	"os"

	"distcoord/internal/baselines"
	"distcoord/internal/eval"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

func main() {
	var (
		algo      = flag.String("algo", "gcasp", "coordination algorithm: drl, central, gcasp, sp")
		topology  = flag.String("topology", "Abilene", "network topology (Abilene, BT Europe, China Telecom, Interroute)")
		topoFile  = flag.String("topology-file", "", "load a custom topology file instead (see internal/graph.Parse)")
		pattern   = flag.String("pattern", "poisson", "arrival pattern: fixed, poisson, mmpp, trace")
		ingresses = flag.Int("ingresses", 2, "number of ingress nodes (v1..vK)")
		deadline  = flag.Float64("deadline", 100, "flow deadline τ")
		horizon   = flag.Float64("horizon", 2000, "simulation horizon T")
		seed      = flag.Int64("seed", 0, "simulation seed")
		episodes  = flag.Int("train-episodes", 300, "DRL training episodes (only -algo drl)")
	)
	flag.Parse()

	if err := run(*algo, *topology, *topoFile, *pattern, *ingresses, *deadline, *horizon, *seed, *episodes); err != nil {
		fmt.Fprintln(os.Stderr, "coordsim:", err)
		os.Exit(1)
	}
}

func run(algo, topology, topoFile, pattern string, ingresses int, deadline, horizon float64, seed int64, episodes int) error {
	spec, err := patternSpec(pattern)
	if err != nil {
		return err
	}
	s := eval.Base()
	s.Topology = topology
	if topoFile != "" {
		f, err := os.Open(topoFile)
		if err != nil {
			return err
		}
		s.Graph, err = graph.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	s.Traffic = spec
	s.NumIngresses = ingresses
	s.Deadline = deadline
	s.Horizon = horizon

	inst, err := s.Instantiate(seed)
	if err != nil {
		return err
	}

	var c simnet.Coordinator
	switch algo {
	case "sp":
		c = baselines.SP{}
	case "gcasp":
		c = baselines.GCASP{}
	case "central":
		c = baselines.NewCentral(100)
	case "drl":
		budget := eval.DefaultTrainBudget()
		budget.Episodes = episodes
		fmt.Fprintf(os.Stderr, "training DRL agent (%d episodes x %d seeds)...\n", budget.Episodes, budget.Seeds)
		policy, err := eval.TrainDRL(s, budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "training scores per seed: %v\n", policy.Stats.SeedScores)
		c, err = policy.Factory()(inst, seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want drl, central, gcasp, sp)", algo)
	}

	m, err := inst.Run(c)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm:      %s\n", c.Name())
	fmt.Printf("topology:       %s (%d nodes, %d links)\n", inst.Graph.Name(), inst.Graph.NumNodes(), inst.Graph.NumLinks())
	fmt.Printf("traffic:        %s at %d ingress node(s)\n", spec.Label, ingresses)
	fmt.Printf("flows arrived:  %d\n", m.Arrived)
	fmt.Printf("successful:     %d (%.1f%%)\n", m.Succeeded, 100*m.SuccessRatio())
	fmt.Printf("dropped:        %d\n", m.Dropped)
	for cause, n := range m.DropsBy {
		fmt.Printf("  %-16s %d\n", cause.String()+":", n)
	}
	fmt.Printf("avg e2e delay:  %.1f ms (max %.1f ms)\n", m.AvgDelay(), m.MaxDelay)
	fmt.Printf("decisions:      %d (%d processings, %d forwards, %d keeps)\n",
		m.Decisions, m.Processings, m.Forwards, m.Keeps)
	return nil
}

func patternSpec(pattern string) (traffic.Spec, error) {
	switch pattern {
	case "fixed":
		return traffic.FixedSpec(10), nil
	case "poisson":
		return traffic.PoissonSpec(10), nil
	case "mmpp":
		return traffic.MMPPSpec(12, 8, 100, 0.05), nil
	case "trace":
		return traffic.SyntheticTraceSpec(10, 2, 4), nil
	}
	return traffic.Spec{}, fmt.Errorf("unknown pattern %q (want fixed, poisson, mmpp, trace)", pattern)
}
