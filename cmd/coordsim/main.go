// Command coordsim runs a single service coordination simulation and
// prints the resulting metrics: pick a topology, a traffic pattern, a
// load level, and a coordination algorithm.
//
// Usage:
//
//	coordsim -algo gcasp -topology Abilene -pattern poisson -ingresses 3
//	coordsim -algo sp -pattern fixed -horizon 20000 -seed 7
//	coordsim -algo drl -train-episodes 200      # trains first, then runs
//	coordsim -algo sp -flow-trace flows.jsonl   # per-flow event trace
//	coordsim -algo sp -metrics-out metrics.json # machine-readable summary
//	coordsim -algo drl -faults node-outage      # resilience run + recovery metrics
//	coordsim -algo drl -jobs 2                  # cap CPU use (GOMAXPROCS)
//	coordsim -algo sp -shards 4                 # sharded multi-core event loop
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"distcoord/internal/baselines"
	"distcoord/internal/chaos"
	"distcoord/internal/clicfg"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/graph"
	"distcoord/internal/nn"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// runConfig collects the parsed command line.
type runConfig struct {
	algo, topology, topoFile, pattern string
	ingresses                         int
	deadline, horizon                 float64
	seed                              int64
	episodes                          int
	greedy                            bool
	model, saveModel                  string
	spawnAgents                       int
	agentdBin                         string
	shared                            *clicfg.Flags
}

func main() {
	var c runConfig
	flag.StringVar(&c.algo, "algo", "gcasp", "coordination algorithm: drl, central, gcasp, sp")
	flag.StringVar(&c.topology, "topology", "Abilene", "network topology (Abilene, BT Europe, China Telecom, Interroute)")
	flag.StringVar(&c.topoFile, "topology-file", "", "load a custom topology file instead (see internal/graph.Parse)")
	flag.StringVar(&c.pattern, "pattern", "poisson", "arrival pattern: fixed, poisson, mmpp, trace")
	flag.IntVar(&c.ingresses, "ingresses", 2, "number of ingress nodes (v1..vK)")
	flag.Float64Var(&c.deadline, "deadline", 100, "flow deadline τ")
	flag.Float64Var(&c.horizon, "horizon", 2000, "simulation horizon T")
	flag.Int64Var(&c.seed, "seed", 0, "simulation seed")
	flag.IntVar(&c.episodes, "train-episodes", 300, "DRL training episodes (only -algo drl)")
	flag.BoolVar(&c.greedy, "greedy", false, "deterministic argmax DRL inference instead of sampling (only -algo drl)")
	flag.StringVar(&c.model, "model", "", "load this policy checkpoint instead of training (only -algo drl)")
	flag.StringVar(&c.saveModel, "save-model", "", "write the policy checkpoint to this path after training (only -algo drl)")
	flag.IntVar(&c.spawnAgents, "spawn-agents", 0, "launch this many local agentd processes and decide through them (only -algo drl; composes with -agents)")
	flag.StringVar(&c.agentdBin, "agentd-bin", "", "agentd binary for -spawn-agents (default: sibling of coordsim, then PATH)")
	c.shared = clicfg.Register(flag.CommandLine)
	flag.Parse()

	if err := run(&c); err != nil {
		fmt.Fprintln(os.Stderr, "coordsim:", err)
		os.Exit(1)
	}
}

// metricsSummary is the -metrics-out schema: headline metrics plus delay
// quantiles, drops keyed by symbolic cause, and per-fault recovery
// reports for fault-injection runs.
type metricsSummary struct {
	Algorithm   string              `json:"algorithm"`
	Topology    string              `json:"topology"`
	Arrived     int                 `json:"arrived"`
	Succeeded   int                 `json:"succeeded"`
	Dropped     int                 `json:"dropped"`
	SuccessRate float64             `json:"success_rate"`
	AvgDelay    float64             `json:"avg_delay"`
	MaxDelay    float64             `json:"max_delay"`
	DelayP50    float64             `json:"delay_p50"`
	DelayP95    float64             `json:"delay_p95"`
	DelayP99    float64             `json:"delay_p99"`
	Decisions   int                 `json:"decisions"`
	Processings int                 `json:"processings"`
	Forwards    int                 `json:"forwards"`
	Keeps       int                 `json:"keeps"`
	DropsBy     map[string]int      `json:"drops_by,omitempty"`
	Faults      int                 `json:"faults,omitempty"`
	Recovery    []chaos.FaultReport `json:"recovery,omitempty"`
}

func run(c *runConfig) error {
	spec, err := patternSpec(c.pattern)
	if err != nil {
		return err
	}
	rt, err := c.shared.Apply()
	if err != nil {
		return err
	}
	defer rt.Close()

	s := eval.Base()
	s.Topology = c.topology
	if c.topoFile != "" {
		f, err := os.Open(c.topoFile)
		if err != nil {
			return err
		}
		s.Graph, err = graph.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	s.Traffic = spec
	s.NumIngresses = c.ingresses
	s.Deadline = c.deadline
	s.Horizon = c.horizon
	s.Faults = rt.FaultSpec()

	inst, err := s.Instantiate(c.seed)
	if err != nil {
		return err
	}
	rt.SetObsInfo("algo", c.algo)
	rt.SetObsInfo("topology", inst.Graph.Name())
	rt.SetObsInfo("pattern", c.pattern)

	remoteMode := c.shared.Agents != "" || c.spawnAgents > 0
	if remoteMode && c.algo != "drl" {
		return fmt.Errorf("a remote agent fleet (-agents/-spawn-agents) requires -algo drl; %q decides in-process only", c.algo)
	}
	if s.Faults.Profile == chaos.ProfileAgentKill && !remoteMode {
		return fmt.Errorf("-faults agent-kill needs a fleet to kill; add -agents or -spawn-agents")
	}

	var coordinator simnet.Coordinator
	var remote *coord.Remote
	switch c.algo {
	case "sp":
		coordinator = baselines.SP{}
	case "gcasp":
		coordinator = baselines.GCASP{}
	case "central":
		coordinator = baselines.NewCentral(100)
	case "drl":
		checkpoint, modelPath, err := drlCheckpoint(c, rt, s)
		if err != nil {
			return err
		}
		if remoteMode {
			fl, err := buildFleet(c, modelPath)
			if err != nil {
				return err
			}
			defer fl.stop()
			remote, err = remoteCoordinator(c, rt, inst, fl, checkpoint)
			if err != nil {
				return err
			}
			defer remote.Close()
			if len(inst.Chaos.AgentKills) > 0 {
				wireAgentKills(remote, fl, rt, inst.Chaos.AgentKills)
			}
			coordinator = remote
		} else {
			actor, err := nn.Load(bytes.NewReader(checkpoint))
			if err != nil {
				return err
			}
			adapter := coord.NewAdapter(inst.Graph, inst.APSP)
			d, err := coord.NewDistributed(adapter, actor)
			if err != nil {
				return err
			}
			d.Reseed(c.seed)
			d.Stochastic = !c.greedy
			coordinator = d
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want drl, central, gcasp, sp)", c.algo)
	}
	if err := c.shared.ValidateShards(coordinator); err != nil {
		return err
	}

	opts := rt.RunOptions()
	var monitor *chaos.Monitor
	if s.Faults.Enabled() {
		monitor = chaos.NewMonitor(inst.Chaos, 0)
		opts.Listener = monitor
	}

	m, err := inst.RunWith(coordinator, opts)
	if err != nil {
		return err
	}

	fmt.Printf("algorithm:      %s\n", coordinator.Name())
	fmt.Printf("topology:       %s (%d nodes, %d links)\n", inst.Graph.Name(), inst.Graph.NumNodes(), inst.Graph.NumLinks())
	fmt.Printf("traffic:        %s at %d ingress node(s)\n", spec.Label, c.ingresses)
	fmt.Printf("flows arrived:  %d\n", m.Arrived)
	fmt.Printf("successful:     %d (%.1f%%)\n", m.Succeeded, 100*m.SuccessRatio())
	fmt.Printf("dropped:        %d\n", m.Dropped)
	for cause, n := range m.DropsBy {
		fmt.Printf("  %-16s %d\n", cause.String()+":", n)
	}
	fmt.Printf("avg e2e delay:  %.1f ms (max %.1f ms, p50 %.1f, p95 %.1f, p99 %.1f)\n",
		m.AvgDelay(), m.MaxDelay, m.DelayQuantile(0.5), m.DelayQuantile(0.95), m.DelayQuantile(0.99))
	fmt.Printf("decisions:      %d (%d processings, %d forwards, %d keeps)\n",
		m.Decisions, m.Processings, m.Forwards, m.Keeps)

	if remote != nil {
		ok, failed := remote.Pool().DecideStats()
		h := rt.DecideRTT()
		fmt.Printf("remote fleet:   %d agents, %d decisions over sockets (%d failed)\n",
			remote.Pool().NumAgents(), ok, failed)
		fmt.Printf("decision RTT:   p50 %.0f µs, p95 %.0f µs, p99 %.0f µs (%d samples)\n",
			h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Count())
	}

	var recovery []chaos.FaultReport
	if monitor != nil {
		recovery = monitor.Report()
		fmt.Printf("faults applied: %d (%s)\n", m.Faults, inst.Chaos.Spec.String())
		for _, r := range recovery {
			rec := "never recovered"
			if r.RecoveryTime >= 0 {
				rec = fmt.Sprintf("recovered in %.0f", r.RecoveryTime)
			}
			fmt.Printf("  t=%-7.0f %-13s dip %.3f (%.3f -> %.3f), %s, %d drops\n",
				r.Time, r.Kind, r.DipDepth, r.PreSuccess, r.MinSuccess, rec, r.Drops)
		}
	}

	if path := rt.MetricsOut(); path != "" {
		if err := writeMetrics(path, c.algo, inst.Graph.Name(), m, recovery); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote metrics summary to %s\n", path)
	}
	return rt.Close()
}

// drlCheckpoint produces the serialized policy the run deploys: loaded
// from -model, or trained here and serialized. It returns the bytes and
// a path holding them (for spawned agentd processes), honoring
// -save-model and falling back to a temp file when spawning needs one.
func drlCheckpoint(c *runConfig, rt *clicfg.Runtime, s eval.Scenario) ([]byte, string, error) {
	var checkpoint []byte
	if c.model != "" {
		data, err := os.ReadFile(c.model)
		if err != nil {
			return nil, "", err
		}
		checkpoint = data
	} else {
		budget := eval.DefaultTrainBudget()
		budget.Episodes = c.episodes
		budget.OnEpisode = func(rec rl.EpisodeRecord) { rt.OnEpisode(rec) }
		fmt.Fprintf(os.Stderr, "training DRL agent (%d episodes x %d seeds)...\n", budget.Episodes, budget.Seeds)
		policy, err := eval.TrainDRL(s, budget)
		if err != nil {
			return nil, "", err
		}
		fmt.Fprintf(os.Stderr, "training scores per seed: %v\n", policy.Stats.SeedScores)
		var buf bytes.Buffer
		if err := policy.Agent.Actor.Save(&buf); err != nil {
			return nil, "", err
		}
		checkpoint = buf.Bytes()
	}
	path := c.model
	if c.saveModel != "" {
		if err := nn.WriteFileVerified(c.saveModel, checkpoint, nn.Checksum(checkpoint)); err != nil {
			return nil, "", err
		}
		fmt.Fprintf(os.Stderr, "wrote policy checkpoint to %s\n", c.saveModel)
		path = c.saveModel
	}
	if path == "" && c.spawnAgents > 0 {
		tmp, err := os.CreateTemp("", "coordsim-model-*.bin")
		if err != nil {
			return nil, "", err
		}
		name := tmp.Name()
		tmp.Close()
		if err := nn.WriteFileVerified(name, checkpoint, nn.Checksum(checkpoint)); err != nil {
			os.Remove(name)
			return nil, "", err
		}
		path = name
	}
	return checkpoint, path, nil
}

// writeMetrics serializes the metrics summary to path as indented JSON.
func writeMetrics(path, algo, topo string, m *simnet.Metrics, recovery []chaos.FaultReport) error {
	sum := metricsSummary{
		Algorithm:   algo,
		Topology:    topo,
		Arrived:     m.Arrived,
		Succeeded:   m.Succeeded,
		Dropped:     m.Dropped,
		SuccessRate: m.SuccessRatio(),
		AvgDelay:    m.AvgDelay(),
		MaxDelay:    m.MaxDelay,
		DelayP50:    m.DelayQuantile(0.5),
		DelayP95:    m.DelayQuantile(0.95),
		DelayP99:    m.DelayQuantile(0.99),
		Decisions:   m.Decisions,
		Processings: m.Processings,
		Forwards:    m.Forwards,
		Keeps:       m.Keeps,
		Faults:      m.Faults,
		Recovery:    recovery,
	}
	if len(m.DropsBy) > 0 {
		sum.DropsBy = make(map[string]int, len(m.DropsBy))
		for cause, n := range m.DropsBy {
			sum.DropsBy[cause.String()] = n
		}
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func patternSpec(pattern string) (traffic.Spec, error) {
	switch pattern {
	case "fixed":
		return traffic.FixedSpec(10), nil
	case "poisson":
		return traffic.PoissonSpec(10), nil
	case "mmpp":
		return traffic.MMPPSpec(12, 8, 100, 0.05), nil
	case "trace":
		return traffic.SyntheticTraceSpec(10, 2, 4), nil
	}
	return traffic.Spec{}, fmt.Errorf("unknown pattern %q (want fixed, poisson, mmpp, trace)", pattern)
}
