package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"distcoord/internal/agentnet"
	"distcoord/internal/chaos"
	"distcoord/internal/clicfg"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
)

// agentProc is one locally spawned agentd process. It remembers its
// bound address and launch arguments so an agent-kill fault can
// terminate the real process and later restart it on the same port.
type agentProc struct {
	bin   string
	model string
	addr  string
	cmd   *exec.Cmd
}

// announceTimeout bounds how long start waits for a spawned agentd to
// print its listener line. A child that wedges before binding used to
// hang the driver forever (and the hung child outlived it); now it is
// killed and reported.
const announceTimeout = 10 * time.Second

// start launches the process and parses the "agentd listening on ADDR"
// line to learn where the listener landed. listen is "127.0.0.1:0" on
// first launch and the remembered concrete address on restart.
func (p *agentProc) start(listen string) error {
	cmd := exec.Command(p.bin, "-listen", listen, "-model", p.model, "-quiet")
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = sysProcAttr()
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "agentd listening on "); ok {
				addrc <- strings.TrimSpace(addr)
				// Keep draining stdout so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			return fmt.Errorf("agentd (%s) exited before announcing its listener", p.bin)
		}
		p.addr = addr
		p.cmd = cmd
		return nil
	case <-time.After(announceTimeout):
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("agentd (%s) did not announce its listener within %s", p.bin, announceTimeout)
	}
}

func (p *agentProc) stop() {
	if p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.cmd = nil
}

// fleet is the driver's view of its agents: the endpoints to dial and,
// when coordsim spawned them itself, the live processes.
type fleet struct {
	endpoints []string
	procs     []*agentProc // nil entries for externally managed agents
	stopOnce  sync.Once
}

// stop kills and reaps every spawned agentd exactly once; the signal
// reaper and the deferred shutdown path may both reach it.
func (fl *fleet) stop() {
	fl.stopOnce.Do(func() {
		for _, p := range fl.procs {
			if p != nil {
				p.stop()
			}
		}
	})
}

// reapOnSignal kills the spawned fleet when coordsim itself is
// interrupted mid-run. Without this, SIGINT/SIGTERM terminated the
// driver before its deferred fl.stop ran, leaking every spawned agentd
// as an orphan daemon (Pdeathsig covers the unclean-death paths on
// Linux; this covers clean signals portably and exits with the
// conventional 128+signo code).
func (fl *fleet) reapOnSignal() {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "coordsim: %s: stopping spawned agents\n", sig)
		fl.stop()
		code := 1
		if s, ok := sig.(syscall.Signal); ok {
			code = 128 + int(s)
		}
		os.Exit(code)
	}()
}

// findAgentd resolves the agentd binary: an explicit -agentd-bin, a
// sibling of the running coordsim executable, or $PATH.
func findAgentd(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "agentd")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if path, err := exec.LookPath("agentd"); err == nil {
		return path, nil
	}
	return "", fmt.Errorf("agentd binary not found (build it with `go build ./cmd/agentd` and pass -agentd-bin, or put it on PATH)")
}

// buildFleet assembles the agent endpoints: the -agents list plus
// -spawn-agents locally launched agentd processes serving modelPath.
func buildFleet(c *runConfig, modelPath string) (*fleet, error) {
	fl := &fleet{endpoints: c.shared.AgentEndpoints()}
	fl.procs = make([]*agentProc, len(fl.endpoints))
	if c.spawnAgents <= 0 {
		return fl, nil
	}
	bin, err := findAgentd(c.agentdBin)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.spawnAgents; i++ {
		p := &agentProc{bin: bin, model: modelPath}
		if err := p.start("127.0.0.1:0"); err != nil {
			fl.stop()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "spawned agentd %d on %s\n", i, p.addr)
		fl.endpoints = append(fl.endpoints, p.addr)
		fl.procs = append(fl.procs, p)
	}
	fl.reapOnSignal()
	return fl, nil
}

// remoteCoordinator dials the fleet and returns the socket-backed
// coordinator, with decision RTTs feeding the runtime's
// rpc_decide_rtt_us histogram, per-agent fleet telemetry (agent.<slot>.*)
// feeding its registry, and the pool's aggregated health view mounted as
// /fleet on the observability endpoint.
func remoteCoordinator(c *runConfig, rt *clicfg.Runtime, inst *eval.Instance, fl *fleet, checkpoint []byte) (*coord.Remote, error) {
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	opts := coord.RemoteOptions{
		Stochastic: !c.greedy,
		Client: agentnet.ClientConfig{
			Timeout:         5 * time.Second,
			DialTimeout:     2 * time.Second,
			ReconnectBudget: 500 * time.Millisecond,
		},
		ObserveRTT: rt.DecideRTT().Observe,
		Metrics:    rt.Registry(),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "coordsim: "+format+"\n", args...)
		},
	}
	if c.shared.ModelPush {
		opts.Checkpoint = checkpoint
	}
	remote, err := coord.NewRemote(adapter, fl.endpoints, c.seed, opts)
	if err != nil {
		return nil, err
	}
	rt.MountObs("/fleet", remote.Pool().FleetHandler())
	return remote, nil
}

// wireAgentKills installs the agent-kill actuator on the remote
// coordinator's decision clock. Spawned agents die for real — the
// process is killed and later restarted on its original port; external
// agents are severed and revived at the connection. Fired events feed
// the runtime's registry (chaos.agent_kills / chaos.agent_revives /
// chaos.agents_down), so the recovery window shows as a /timeseries dip.
func wireAgentKills(r *coord.Remote, fl *fleet, rt *clicfg.Runtime, kills []chaos.AgentKill) {
	pool := r.Pool()
	kill := func(slot int) {
		if p := fl.procs[slot]; p != nil {
			fmt.Fprintf(os.Stderr, "chaos: killing agentd %d (%s)\n", slot, p.addr)
			p.stop()
		} else {
			fmt.Fprintf(os.Stderr, "chaos: severing agent %d\n", slot)
		}
		pool.Sever(slot)
	}
	revive := func(slot int) {
		if p := fl.procs[slot]; p != nil {
			fmt.Fprintf(os.Stderr, "chaos: restarting agentd %d on %s\n", slot, p.addr)
			if err := p.start(p.addr); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: restart agentd %d: %v\n", slot, err)
				return
			}
		} else {
			fmt.Fprintf(os.Stderr, "chaos: reviving agent %d\n", slot)
		}
		pool.Revive(slot)
	}
	act := chaos.NewAgentKillActuator(kills, pool.NumAgents(), kill, revive)
	reg := rt.Registry()
	down := reg.Gauge("chaos.agents_down")
	act.OnEvent = func(simTime float64, slot int, revived bool) {
		if revived {
			reg.Counter("chaos.agent_revives").Inc()
			down.Set(down.Value() - 1)
		} else {
			reg.Counter("chaos.agent_kills").Inc()
			down.Set(down.Value() + 1)
		}
	}
	r.OnTime = act.Advance
}
