// Command topo inspects and exports the evaluation topologies and
// validates user-supplied topology files.
//
// Usage:
//
//	topo -name Abilene -format stats          # Table I style statistics
//	topo -name "BT Europe" -format dot        # Graphviz DOT on stdout
//	topo -name Interroute -format file        # topology file format
//	topo -validate my-network.txt             # check a custom topology
package main

import (
	"flag"
	"fmt"
	"os"

	"distcoord/internal/clicfg"
	"distcoord/internal/graph"
)

func main() {
	var (
		name     = flag.String("name", "Abilene", "registry topology name")
		format   = flag.String("format", "stats", "output format: stats, dot, file")
		validate = flag.String("validate", "", "validate a topology file and print its statistics")
	)
	shared := clicfg.Register(flag.CommandLine)
	flag.Parse()

	if err := runShared(shared, *name, *format, *validate); err != nil {
		fmt.Fprintln(os.Stderr, "topo:", err)
		os.Exit(1)
	}
}

// runShared wraps run with the shared flag surface; the profiling hooks
// are useful when validating large topologies (APSP dominates). The
// simulation-only outputs (-flow-trace, -faults, ...) are accepted for
// surface uniformity but never produce output here.
func runShared(shared *clicfg.Flags, name, format, validate string) error {
	rt, err := shared.Apply()
	if err != nil {
		return err
	}
	defer rt.Close()
	if err := run(name, format, validate); err != nil {
		return err
	}
	return rt.Close()
}

func run(name, format, validate string) error {
	var g *graph.Graph
	if validate != "" {
		f, err := os.Open(validate)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.Parse(f)
		if err != nil {
			return err
		}
		if !g.Connected() {
			fmt.Println("warning: topology is not connected")
		}
		return printStats(g)
	}

	g, err := graph.ByName(name)
	if err != nil {
		return err
	}
	switch format {
	case "stats":
		return printStats(g)
	case "dot":
		return g.WriteDOT(os.Stdout)
	case "file":
		return g.Write(os.Stdout)
	}
	return fmt.Errorf("unknown format %q (want stats, dot, file)", format)
}

func printStats(g *graph.Graph) error {
	apsp := graph.NewAPSP(g)
	fmt.Printf("topology:   %s\n", g.Name())
	fmt.Printf("nodes:      %d\n", g.NumNodes())
	fmt.Printf("links:      %d\n", g.NumLinks())
	fmt.Printf("degree:     min %d / max %d / avg %.2f\n", g.MinDegree(), g.MaxDegree(), g.AvgDegree())
	fmt.Printf("diameter:   %.2f ms (shortest-path delay)\n", apsp.Diameter())
	fmt.Printf("connected:  %v\n", g.Connected())
	return nil
}
