package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunStats(t *testing.T) {
	for _, format := range []string{"stats", "dot", "file"} {
		if err := run("Abilene", format, ""); err != nil {
			t.Errorf("run(Abilene, %s): %v", format, err)
		}
	}
}

func TestRunUnknowns(t *testing.T) {
	if err := run("Atlantis", "stats", ""); err == nil {
		t.Error("accepted unknown topology")
	}
	if err := run("Abilene", "hologram", ""); err == nil {
		t.Error("accepted unknown format")
	}
}

func TestValidateFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.txt")
	content := "topology t\nnode a 0 0 1\nnode b 0 1 1\nlink a b 1 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", path); err != nil {
		t.Errorf("validate: %v", err)
	}
	if err := run("", "", filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("accepted missing file")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("frob\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", bad); err == nil {
		t.Error("accepted malformed file")
	}
}
