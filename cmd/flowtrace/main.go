// Command flowtrace analyzes per-flow simulator traces (the JSONL files
// written by -flow-trace) offline: it reassembles every flow into a span
// tree and prints the end-to-end delay decomposition (processing vs.
// transit vs. waiting), a per-node/per-agent or per-drop-cause
// attribution table, and the critical path of the slowest flows.
//
// Usage:
//
//	coordsim -algo sp -topo line4 -flow-trace trace.jsonl
//	flowtrace -in trace.jsonl                 # decomposition + node table
//	flowtrace -in trace.jsonl -by cause       # drop-cause attribution
//	flowtrace -in trace.jsonl -by agent -agents 3   # fleet attribution
//	flowtrace -in trace.jsonl -top 5          # 5 slowest flows, spelled out
//	flowtrace -in trace.jsonl -json           # full report as JSON
//
// Traces from remote runs carry the wall-time decomposition of every
// decision round trip; the report then includes the RPC sub-span table,
// and -strict additionally asserts the exact-tiling invariant
// (send+net+queue+infer+return == total for every decision).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"distcoord/internal/flowtrace"
	"distcoord/internal/simnet"
)

func main() {
	var (
		in     = flag.String("in", "", "flow-trace JSONL file to analyze (\"-\" for stdin)")
		top    = flag.Int("top", 10, "list the N slowest completed flows with their critical path")
		by     = flag.String("by", "node", "attribution table to print: node, agent, cause, or phase")
		agents = flag.Int("agents", 0, "fleet size for -by agent (node v maps to agent v mod N)")
		asJSON = flag.Bool("json", false, "emit the full report as JSON instead of text")
		strict = flag.Bool("strict", false, "fail on malformed flows or broken RPC tiling instead of skipping/ignoring")
	)
	flag.Parse()
	if err := run(os.Stdout, *in, *top, *by, *agents, *asJSON, *strict); err != nil {
		fmt.Fprintln(os.Stderr, "flowtrace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, in string, top int, by string, agents int, asJSON, strict bool) error {
	switch by {
	case "node", "cause", "phase":
	case "agent":
		if agents <= 0 {
			return fmt.Errorf("-by agent needs -agents N (the fleet size)")
		}
	default:
		return fmt.Errorf("-by must be node, agent, cause, or phase, got %q", by)
	}
	if in == "" {
		return fmt.Errorf("-in is required (a -flow-trace JSONL file, or \"-\" for stdin)")
	}
	events, err := readEvents(in)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no trace events", in)
	}

	spans, errs := flowtrace.AssembleLoose(events)
	if strict && len(errs) > 0 {
		return fmt.Errorf("%d malformed flows, first: %w", len(errs), errs[0])
	}
	if strict {
		if _, err := flowtrace.VerifyRPCTiling(spans); err != nil {
			return fmt.Errorf("rpc tiling: %w", err)
		}
	}
	rep := flowtrace.Analyze(spans, top)

	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	render(w, rep, by, agents, len(errs))
	return nil
}

// readEvents decodes one TraceEvent per JSONL line, skipping blanks.
func readEvents(path string) ([]simnet.TraceEvent, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var events []simnet.TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e simnet.TraceEvent
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

func render(w io.Writer, rep *flowtrace.Report, by string, agents, malformed int) {
	fmt.Fprintf(w, "flows: %d (%d completed, %d dropped", rep.Flows, rep.Completed, rep.Dropped)
	if malformed > 0 {
		fmt.Fprintf(w, ", %d malformed skipped", malformed)
	}
	fmt.Fprintln(w, ")")
	if rep.Completed > 0 {
		fmt.Fprintf(w, "mean end-to-end delay (completed): %.4g\n", rep.MeanDelay)
	}

	fmt.Fprintln(w, "\ndelay decomposition (completed flows):")
	printDecomp(w, rep.Delay)
	if rep.Dropped > 0 {
		fmt.Fprintln(w, "\ntime spent by dropped flows:")
		printDecomp(w, rep.DroppedTime)
	}
	if rep.RPC != nil {
		printRPC(w, rep.RPC)
	}

	switch by {
	case "node":
		fmt.Fprintln(w, "\nper-node attribution (each node is one agent):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "node\tdecisions\tprocess#\tforward#\tkeep#\twait\tprocess\ttransit\tdrops")
		for _, n := range rep.Nodes {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.4g\t%.4g\t%.4g\t%d\n",
				n.Node, n.Decisions, n.Processes, n.Forwards, n.Keeps, n.Wait, n.Process, n.Transit, n.Drops)
		}
		tw.Flush()
	case "agent":
		fmt.Fprintf(w, "\nper-agent attribution (%d agents, node v -> agent v mod %d):\n", agents, agents)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "agent\tnodes\tdecisions\tprocess#\tforward#\tkeep#\twait\tprocess\ttransit\tdrops")
		for _, a := range flowtrace.GroupByAgent(rep.Nodes, agents) {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.4g\t%.4g\t%.4g\t%d\n",
				a.Agent, intsString(a.Nodes), a.Decisions, a.Processes, a.Forwards, a.Keeps, a.Wait, a.Process, a.Transit, a.Drops)
		}
		tw.Flush()
	case "cause":
		if len(rep.Causes) == 0 {
			fmt.Fprintln(w, "\nno drops.")
			break
		}
		fmt.Fprintln(w, "\ndrop-cause attribution:")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "cause\tcount\tmean lifetime\tmean chain pos")
		for _, c := range rep.Causes {
			fmt.Fprintf(tw, "%s\t%d\t%.4g\t%.2f\n", c.CauseName, c.Count, c.MeanLife, c.MeanComp)
		}
		tw.Flush()
	case "phase":
		// The decompositions above are the phase view; nothing extra.
	}

	if len(rep.Slowest) > 0 {
		fmt.Fprintf(w, "\nslowest %d completed flows:\n", len(rep.Slowest))
		for _, f := range rep.Slowest {
			d := f.Decompose()
			fmt.Fprintf(w, "  flow %d: delay %.4g (wait %.4g, process %.4g, transit %.4g) path %s\n",
				f.FlowID, f.Delay(), d.Wait, d.Process, d.Transit, pathString(f))
			for i, s := range f.CriticalPath() {
				if i == 3 {
					break
				}
				fmt.Fprintf(w, "    %-8s %.4g at node %d [%.4g, %.4g]\n",
					s.Phase, s.Duration(), s.Node, s.Start, s.End)
			}
			printFlowRPC(w, f)
		}
	}
}

// printFlowRPC spells out the wall-time sub-spans of the flow's slowest
// remote decisions (up to 3) — the cost hiding behind the zero-duration
// decision markers of the critical path.
func printFlowRPC(w io.Writer, f *flowtrace.FlowSpan) {
	var decs []flowtrace.Segment
	for i := range f.Visits {
		for _, s := range f.Visits[i].Segments {
			if s.Phase == flowtrace.PhaseDecision && s.RPC.TotalNS != 0 {
				decs = append(decs, s)
			}
		}
	}
	if len(decs) == 0 {
		return
	}
	sort.Slice(decs, func(i, j int) bool { return decs[i].RPC.TotalNS > decs[j].RPC.TotalNS })
	for i, s := range decs {
		if i == 3 {
			break
		}
		t := s.RPC
		fmt.Fprintf(w, "    decision rpc %.1fus at node %d t=%.4g (send %.1f, net %.1f, queue %.1f, infer %.1f, return %.1f)\n",
			float64(t.TotalNS)/1e3, s.Node, s.Start,
			float64(t.SendNS)/1e3, float64(t.NetNS)/1e3, float64(t.QueueNS)/1e3, float64(t.InferNS)/1e3, float64(t.ReturnNS)/1e3)
	}
}

// printRPC renders the aggregate decision round-trip decomposition of a
// remote run. The sub-span percentages tile the total exactly.
func printRPC(w io.Writer, r *flowtrace.RPCStat) {
	fmt.Fprintf(w, "\ndecision round trips (remote): %d, mean %.1fus\n", r.Decisions, r.MeanUS)
	pct := func(v float64) float64 {
		if r.TotalUS == 0 {
			return 0
		}
		return 100 * v / r.TotalUS
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  client-send\t%.1fus\t%5.1f%%\n", r.SendUS, pct(r.SendUS))
	fmt.Fprintf(tw, "  network\t%.1fus\t%5.1f%%\n", r.NetUS, pct(r.NetUS))
	fmt.Fprintf(tw, "  agent-queue\t%.1fus\t%5.1f%%\n", r.QueueUS, pct(r.QueueUS))
	fmt.Fprintf(tw, "  inference\t%.1fus\t%5.1f%%\n", r.InferUS, pct(r.InferUS))
	fmt.Fprintf(tw, "  return\t%.1fus\t%5.1f%%\n", r.ReturnUS, pct(r.ReturnUS))
	fmt.Fprintf(tw, "  total\t%.1fus\t\n", r.TotalUS)
	tw.Flush()
}

// intsString renders a node list compactly ("0 3 6").
func intsString(xs []int) string {
	var sb strings.Builder
	for i, x := range xs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", x)
	}
	return sb.String()
}

func printDecomp(w io.Writer, d flowtrace.Decomposition) {
	total := d.Total()
	pct := func(v float64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * v / total
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  wait\t%.4g\t%5.1f%%\n", d.Wait, pct(d.Wait))
	fmt.Fprintf(tw, "  process\t%.4g\t%5.1f%%\n", d.Process, pct(d.Process))
	fmt.Fprintf(tw, "  transit\t%.4g\t%5.1f%%\n", d.Transit, pct(d.Transit))
	fmt.Fprintf(tw, "  total\t%.4g\t\n", total)
	tw.Flush()
}

// pathString renders the node route, e.g. "0 -> 1 -> 2" or
// "0 -> 1 (dropped: link-failure)".
func pathString(f *flowtrace.FlowSpan) string {
	var sb strings.Builder
	for i := range f.Visits {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(&sb, "%d", f.Visits[i].Node)
	}
	if n := len(f.Visits); n == 0 || f.Visits[n-1].Node != f.Final {
		fmt.Fprintf(&sb, " -> %d", f.Final)
	}
	if !f.Completed {
		fmt.Fprintf(&sb, " (dropped: %s)", f.Drop)
	}
	return sb.String()
}
