package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// writeTrace simulates a small fault run (incl. an instance kill) and
// writes its trace as the JSONL file the CLI consumes.
func writeTrace(t *testing.T) string {
	t.Helper()
	g := graph.New("line")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), 10)
	}
	for i := 0; i < 2; i++ {
		if err := g.AddLink(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
		g.SetLinkCapacity(i, 10)
	}
	var lines []string
	cfg := simnet.Config{
		Graph:   g,
		Service: &simnet.Service{Name: "svc", Chain: []*simnet.Component{{Name: "c1", ProcDelay: 5, StartupDelay: 2, IdleTimeout: 1000, ResourcePerRate: 1}}},
		Ingresses: []simnet.Ingress{
			{Node: 0, Arrivals: traffic.Fixed{Interval: 4}},
		},
		Egress:      2,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     41,
		Coordinator: localCoord{},
		Faults:      []simnet.Fault{{Time: 13, Kind: simnet.FaultInstanceKill, Node: 0}},
		Tracer: simnet.TracerFunc(func(e simnet.TraceEvent) {
			b, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			lines = append(lines, string(b))
		}),
	}
	s, err := simnet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DropsBy[simnet.DropInstanceKill] == 0 {
		t.Fatal("scenario produced no instance-kill drop")
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// localCoord processes locally when capacity allows, else forwards
// toward the egress.
type localCoord struct{}

func (localCoord) Name() string { return "test-local" }

func (localCoord) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, _ float64) int {
	if !f.Processed() && st.FreeNode(v) >= f.Current().Resource(f.Rate) {
		return 0
	}
	hop := st.APSP().NextHop(v, f.Egress)
	for i, ad := range st.Graph().Neighbors(v) {
		if ad.Neighbor == hop {
			return i + 1
		}
	}
	return 0
}

func TestRunTextReport(t *testing.T) {
	path := writeTrace(t)
	for _, by := range []string{"node", "cause", "phase"} {
		var sb strings.Builder
		if err := run(&sb, path, 3, by, 0, false, true); err != nil {
			t.Fatalf("-by %s: %v", by, err)
		}
		out := sb.String()
		if !strings.Contains(out, "delay decomposition") || !strings.Contains(out, "slowest") {
			t.Errorf("-by %s output missing sections:\n%s", by, out)
		}
		switch by {
		case "node":
			if !strings.Contains(out, "per-node attribution") {
				t.Errorf("node table missing:\n%s", out)
			}
		case "cause":
			if !strings.Contains(out, "instance-kill") {
				t.Errorf("instance-kill missing from cause table:\n%s", out)
			}
		}
	}
}

func TestRunByAgent(t *testing.T) {
	path := writeTrace(t)
	// -by agent requires a fleet size.
	if err := run(&strings.Builder{}, path, 3, "agent", 0, false, true); err == nil {
		t.Error("-by agent without -agents accepted")
	}
	var sb strings.Builder
	if err := run(&sb, path, 3, "agent", 2, false, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "per-agent attribution (2 agents") {
		t.Errorf("agent table missing:\n%s", out)
	}
}

func TestRunJSONReport(t *testing.T) {
	path := writeTrace(t)
	var sb strings.Builder
	if err := run(&sb, path, 3, "node", 0, true, true); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Flows     int `json:"flows"`
		Completed int `json:"completed"`
		Dropped   int `json:"dropped"`
		Causes    []struct {
			Cause string `json:"cause"`
			Count int    `json:"count"`
		} `json:"causes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, sb.String())
	}
	if rep.Flows == 0 || rep.Flows != rep.Completed+rep.Dropped {
		t.Errorf("inconsistent totals: %+v", rep)
	}
	found := false
	for _, c := range rep.Causes {
		if c.Cause == "instance-kill" && c.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("instance-kill cause missing: %+v", rep.Causes)
	}
}

func TestRunInputErrors(t *testing.T) {
	if err := run(&strings.Builder{}, "", 3, "node", 0, false, false); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(&strings.Builder{}, "/nonexistent/trace.jsonl", 3, "node", 0, false, false); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(&strings.Builder{}, "x.jsonl", 3, "bogus", 0, false, false); err == nil {
		t.Error("bad -by accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&strings.Builder{}, bad, 3, "node", 0, false, false); err == nil {
		t.Error("malformed JSONL accepted")
	}

	// A truncated but parseable trace: loose mode skips, strict fails.
	trunc := filepath.Join(t.TempDir(), "trunc.jsonl")
	events := []simnet.TraceEvent{
		{Time: 0, Kind: simnet.TraceArrival, FlowID: 1, Node: 0, Action: -1, Link: -1},
		{Time: 2, Kind: simnet.TraceComplete, FlowID: 1, Node: 0, Action: -1, Link: -1},
		{Time: 1, Kind: simnet.TraceArrival, FlowID: 2, Node: 0, Action: -1, Link: -1},
	}
	var lines []string
	for _, e := range events {
		b, _ := json.Marshal(e)
		lines = append(lines, string(b))
	}
	if err := os.WriteFile(trunc, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(&sb, trunc, 3, "node", 0, false, false); err != nil {
		t.Errorf("loose mode rejected truncated trace: %v", err)
	}
	if !strings.Contains(sb.String(), "malformed skipped") {
		t.Errorf("skip note missing:\n%s", sb.String())
	}
	if err := run(&strings.Builder{}, trunc, 3, "node", 0, false, true); err == nil {
		t.Error("strict mode accepted truncated trace")
	}
}
