// Command ctl is the experiment-controller daemon: it serves the
// internal/ctlserv HTTP API (submit runs and sweeps, watch progress,
// recalc figures from stored grid logs) on top of a content-addressed
// artifact store, alongside the standard observability endpoints
// (/metrics, /snapshot, /run) on the same listener.
//
// Usage:
//
//	ctl -listen 127.0.0.1:8801 -store ./ctl-store
//	ctl -listen :0 -store ./ctl-store     # free port, printed on stdout
//
// The daemon prints "ctl listening on ADDR" on stdout once the socket
// is bound (scripts parse this line to learn the port), then serves
// until SIGINT/SIGTERM; shutdown cancels queued and running work,
// persists every manifest, and drains in-flight HTTP requests
// gracefully.
//
// Submit a sweep and re-render it:
//
//	curl -X POST localhost:8801/sweeps -d '{"base":{"algo":"sp","seeds":3},
//	    "axes":[{"param":"algo","values":["sp","gcasp"]}]}'
//	curl localhost:8801/runs/<id>               # manifest + progress
//	curl localhost:8801/runs/<id>/events        # chunked JSONL stream
//	curl -X POST localhost:8801/runs/<id>/recalc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"

	"distcoord/internal/ctlserv"
	"distcoord/internal/store"
	"distcoord/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8801", "serve the controller API on this address (:0 for a free port)")
	storeDir := flag.String("store", "ctl-store", "artifact store directory (created if missing)")
	jobs := flag.Int("jobs", 0, "worker-pool bound for each run's evaluation grid (0: all CPUs)")
	queueDepth := flag.Int("queue-depth", 0, "max runs waiting behind the executing one (0: default 64)")
	gitRev := flag.String("git-rev", "", "git revision recorded in run manifests (default: git rev-parse HEAD)")
	quiet := flag.Bool("quiet", false, "suppress server log lines")
	flag.Parse()

	if err := run(*listen, *storeDir, *jobs, *queueDepth, *gitRev, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "ctl:", err)
		os.Exit(1)
	}
}

func run(listen, storeDir string, jobs, queueDepth int, gitRev string, quiet bool) error {
	if listen == "" {
		return fmt.Errorf("-listen is required")
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return err
	}
	logf := log.New(os.Stderr, "ctl: ", log.LstdFlags).Printf
	if quiet {
		logf = func(string, ...interface{}) {}
	}
	if gitRev == "" {
		gitRev = currentGitRev()
	}

	ctl := ctlserv.New(st, ctlserv.Options{
		GitRev:     gitRev,
		Jobs:       jobs,
		QueueDepth: queueDepth,
		Logf:       logf,
	})

	// One listener serves both tiers: the controller API and the
	// standard observability endpoints over the process registry.
	obs := telemetry.NewObsServer("ctl", telemetry.NewRegistry())
	obs.SetInfo("store", storeDir)
	obs.SetInfo("git_rev", gitRev)
	for _, pattern := range []string{"/runs", "/runs/", "/sweeps", "/blobs/"} {
		obs.Mount(pattern, ctl.Handler())
	}
	if err := obs.Start(listen); err != nil {
		ctl.Close()
		return err
	}
	fmt.Printf("ctl listening on %s\n", obs.Addr())
	logf("store %s, git rev %s", storeDir, gitRev)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	logf("received %s, shutting down", sig)

	// Stop the executor first (cancels queued and running work, persists
	// terminal manifests), then drain in-flight HTTP requests.
	ctl.Close()
	return obs.Close()
}

// currentGitRev asks git for HEAD; manifests record "unknown" when the
// store lives outside a checkout or git is unavailable.
func currentGitRev() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	if rev := strings.TrimSpace(string(out)); rev != "" {
		return rev
	}
	return "unknown"
}
